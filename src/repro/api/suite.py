"""Suite runner: the c1..c8 comparison behind Tables II and III.

``run_suite`` fans every (design, flow) pair over a process pool when
``workers`` > 1; each worker process prepares a design once (cached)
and every flow on that design shares the prepared artifacts.  Rows are
returned in deterministic serial order — design order of
``suite_specs``, then flow order — so a parallel run is row-for-row
identical to a serial one.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING, Tuple

from repro.api.prepared import (
    PreparedDesign,
    prepare_design,
    prepare_suite_design,
)
from repro.api.registry import get_flow, parse_flow_spec
from repro.core.config import Effort
from repro.gen.designs import suite_specs
from repro.obs import (
    NULL_TRACER,
    Tracer,
    perf_seconds,
    use_tracer,
    write_chrome_trace,
)

if TYPE_CHECKING:  # pragma: no cover - avoids an eval<->api cycle
    from repro.eval.flow import FlowMetrics

DEFAULT_FLOWS = ("indeda", "hidap-best3", "handfp")


@dataclass
class SuiteResult:
    """All rows plus bookkeeping for table formatting."""

    rows: List["FlowMetrics"] = field(default_factory=list)
    design_info: Dict[str, str] = field(default_factory=dict)
    total_seconds: float = 0.0
    #: Tracer payloads (one per traced process, serial task order)
    #: when ``run_suite(trace=...)`` was used; ``None`` otherwise.
    #: Timing-only — excluded from every row/table comparison.
    trace: Optional[List[Dict[str, Any]]] = None

    def rows_for(self, design: str) -> List["FlowMetrics"]:
        return [r for r in self.rows if r.design == design]


#: Per-process prepared-design cache (populated inside pool workers so
#: every flow scheduled on the same worker reuses flat/gnet/gseq).
_PREPARED_CACHE: Dict[Tuple[str, str], PreparedDesign] = {}


def _portable_flow_entries():
    """Registry entries beyond the builtins, for shipping to workers.

    Under spawn/forkserver start methods a worker re-imports
    ``repro.api`` and only sees the builtin flows; third-party
    registrations must be replayed.  Entries whose factories cannot be
    pickled (lambdas, closures) are skipped — they still work under
    fork, where workers inherit the registry.
    """
    import pickle

    from repro.api.flows import BUILTIN_FLOW_NAMES
    from repro.api.registry import _REGISTRY

    entries = []
    for name, entry in _REGISTRY.items():
        # Skip entries the worker's own `import repro.api` recreates:
        # a builtin name still bound to a builtin factory.  A builtin
        # class registered under a custom name (or a builtin name
        # overwritten with a custom factory) must be replayed.
        is_builtin = (
            name in BUILTIN_FLOW_NAMES
            and getattr(entry.factory, "__module__", None)
            == "repro.api.flows")
        if is_builtin:
            continue
        item = (name, entry.factory, entry.description)
        try:
            pickle.dumps(item)
        except Exception:
            continue
        entries.append(item)
    return entries


def _portable_backend_entries():
    """Third-party referee backends + the default name, for workers.

    Like flows, backend registrations live in-process: under
    spawn/forkserver a worker's ``import repro.metrics`` only recreates
    the builtin python/numpy backends, so custom backends (and a
    ``set_default_backend`` override) must be replayed.  Unpicklable
    backend objects are skipped — they still work under fork.
    """
    import pickle

    from repro.metrics import (
        available_backends,
        default_backend_name,
        get_backend,
    )

    entries = []
    for name in available_backends():
        if name in ("python", "numpy"):
            continue
        backend = get_backend(name)
        try:
            pickle.dumps(backend)
        except Exception:
            continue
        entries.append(backend)
    # Only replay a default the worker will actually be able to
    # resolve; an unpicklable custom default degrades to the builtin
    # default instead of crashing every worker.
    default = default_backend_name()
    if default not in {"python", "numpy"} | {b.name for b in entries}:
        default = None
    return entries, default


def _init_suite_worker(entries, backend_entries=(),
                       default_backend=None) -> None:
    """Pool initializer: replay third-party flow/backend registrations."""
    from repro.api.registry import register_flow
    from repro.metrics import register_backend, set_default_backend

    for name, factory, description in entries:
        register_flow(name, factory, description=description,
                      overwrite=True)
    for backend in backend_entries:
        register_backend(backend, overwrite=True)
    if default_backend is not None:
        set_default_backend(default_backend)


def _prepared_for(scale: str, name: str) -> PreparedDesign:
    key = (scale, name)
    prepared = _PREPARED_CACHE.get(key)
    if prepared is None:
        prepared = prepare_suite_design(name, scale)
        # Worker-local memo of the immutable PreparedDesign: filled
        # once per (scale, name) per process, never read across
        # processes, and the cached value is frozen — determinism does
        # not depend on which worker compiled it.
        _PREPARED_CACHE[key] = prepared  # repro: noqa[REP009] frozen memo
    return prepared


def _run_one(prepared: PreparedDesign, flow: str, seed: int,
             effort: Effort,
             referee_backend: Optional[str] = None) -> "FlowMetrics":
    metrics = get_flow(flow, seed=seed, effort=effort,
                       referee_backend=referee_backend).evaluate(prepared)
    # The paper reports every builtin hidap variant simply as "hidap".
    # Match the parsed registry name, not a spec prefix, so that
    # third-party flows named e.g. "hidap-mine" keep their own label.
    name, _params = parse_flow_spec(flow)
    if name in ("hidap", "hidap-best3"):
        metrics.flow = "hidap"
    return metrics


def _suite_task(scale: str, design_name: str, flow: str, seed: int,
                effort_value: str,
                referee_backend: Optional[str] = None,
                trace: bool = False
                ) -> Tuple[str, str, "FlowMetrics", str,
                           Optional[Dict[str, Any]]]:
    """One (design, flow) cell, executed inside a pool worker.

    With ``trace`` on, the cell runs under a worker-local tracer and
    ships its span-tree payload back through the pool's result path —
    this is how a parallel suite trace shows each worker's own
    ``prepare.*`` recompilation cost.  One tracer per cell (not per
    worker) keeps payload transport on the existing result channel
    with no worker-exit hooks.
    """
    if not trace:
        prepared = _prepared_for(scale, design_name)
        metrics = _run_one(prepared, flow, seed, Effort(effort_value),
                           referee_backend)
        return design_name, flow, metrics, prepared.info(), None
    tracer = Tracer(f"worker-{os.getpid()}")
    with use_tracer(tracer):
        with tracer.span("suite.task", design=design_name, flow=flow):
            prepared = _prepared_for(scale, design_name)
            metrics = _run_one(prepared, flow, seed,
                               Effort(effort_value), referee_backend)
    return design_name, flow, metrics, prepared.info(), tracer.payload()


def run_suite(scale: str = "bench",
              flows: Sequence[str] = DEFAULT_FLOWS,
              designs: Optional[Sequence[str]] = None,
              seed: int = 1,
              effort: Effort = Effort.NORMAL,
              verbose: bool = False,
              workers: Optional[int] = None,
              referee_backend: Optional[str] = None,
              trace=None) -> SuiteResult:
    """Run every flow on every (selected) suite design.

    ``workers=None`` (or 1) runs serially in-process; ``workers=N``
    fans the (design, flow) pairs over ``N`` worker processes.  Both
    modes produce identical rows in identical order.
    ``referee_backend`` picks the referee kernels by name for every
    flow (``None`` → the :mod:`repro.metrics` default); builtin
    backends are bit-identical, so rows do not depend on the choice.

    ``trace`` turns on :mod:`repro.obs` span recording for the run and
    every (design, flow) cell — including cells inside pool workers,
    whose span trees ride back on the pool's result path.  A path
    writes a Chrome trace-event file (viewable in Perfetto /
    ``chrome://tracing``); ``True`` only collects.  Either way the
    payloads land on ``SuiteResult.trace`` in serial task order, main
    process first.  Tracing never changes rows (asserted in
    ``tests/test_obs_determinism.py``).
    """
    from repro.eval.tables import normalize_to_handfp

    start = perf_seconds()
    tracing = bool(trace)
    tracer = Tracer("main") if tracing else None
    result = SuiteResult()
    specs = [spec for spec in suite_specs(scale)
             if designs is None or spec.name in designs]
    flows = tuple(flows)
    tasks = [(spec.name, flow) for spec in specs for flow in flows]
    payloads: Dict[Tuple[str, str], Dict[str, Any]] = {}

    if workers is not None and workers > 1 and len(tasks) > 1:
        done: Dict[Tuple[str, str], Tuple["FlowMetrics", str]] = {}
        backend_entries, default_backend = _portable_backend_entries()
        with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_suite_worker,
                initargs=(_portable_flow_entries(), backend_entries,
                          default_backend)) as pool:
            futures = {
                pool.submit(_suite_task, scale, name, flow, seed,
                            effort.value, referee_backend,
                            tracing): (name, flow)
                for name, flow in tasks}
            for future in as_completed(futures):
                design_name, flow, metrics, info, payload = (
                    future.result())
                done[(design_name, flow)] = (metrics, info)
                if payload is not None:
                    payloads[(design_name, flow)] = payload
                if verbose:
                    print(metrics.row(), flush=True)
        for name, flow in tasks:                   # serial row order
            metrics, info = done[(name, flow)]
            result.design_info.setdefault(name, info)
            result.rows.append(metrics)
    else:
        with use_tracer(tracer) if tracing else nullcontext():
            active = tracer if tracing else NULL_TRACER
            for spec in specs:
                prepared = prepare_design(spec)
                result.design_info[spec.name] = prepared.info()
                for flow in flows:
                    with active.span("suite.task", design=spec.name,
                                     flow=flow):
                        metrics = _run_one(prepared, flow, seed,
                                           effort, referee_backend)
                    result.rows.append(metrics)
                    if verbose:
                        print(metrics.row(), flush=True)

    normalize_to_handfp(result.rows)
    result.total_seconds = perf_seconds() - start
    if tracing:
        tracer.metrics.gauge("suite.total_seconds",
                             result.total_seconds)
        tracer.metrics.label("suite.scale", scale)
        result.trace = [tracer.payload()] + [
            payloads[key] for key in tasks if key in payloads]
        if not isinstance(trace, bool):
            write_chrome_trace(trace, result.trace)
    return result
