"""Suite runner: the c1..c8 comparison behind Tables II and III.

``run_suite`` is a thin client of the placement service layer
(:mod:`repro.service`): serial runs execute cells inline through
:func:`repro.service.engine.execute_cell`; ``workers=N`` runs submit
every (design, flow) pair to a :class:`repro.service.PlacementService`
pool.  Rows are returned in deterministic serial order — design order
of ``suite_specs``, then flow order — so a parallel run is row-for-row
identical to a serial one.

``store=`` names a :class:`repro.service.CompiledDesignStore` (or a
directory for one): designs are then compiled at most once, ever — a
warm store skips every ``prepare.*`` compile, and pooled workers
attach the compiled arrays through shared memory instead of
rebuilding.  Without a store the legacy behaviour is preserved
exactly: every worker process rebuilds and recompiles per process.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING, Tuple

from repro.api.prepared import prepare_design
from repro.api.run import RunOptions, TraceSpec, resolve_options
from repro.gen.designs import suite_specs
from repro.obs import (
    NULL_TRACER,
    Tracer,
    perf_seconds,
    use_tracer,
    write_chrome_trace,
)
from repro.service import engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.run import FlowMetrics
    from repro.service.store import CompiledDesignStore

DEFAULT_FLOWS = ("indeda", "hidap-best3", "handfp")


@dataclass
class SuiteResult:
    """All rows plus bookkeeping for table formatting."""

    rows: List["FlowMetrics"] = field(default_factory=list)
    design_info: Dict[str, str] = field(default_factory=dict)
    total_seconds: float = 0.0
    #: Tracer payloads (one per traced process, serial task order)
    #: when ``run_suite(trace=...)`` was used; ``None`` otherwise.
    #: Timing-only — excluded from every row/table comparison.
    trace: Optional[List[Dict[str, Any]]] = None

    def rows_for(self, design: str) -> List["FlowMetrics"]:
        return [r for r in self.rows if r.design == design]


# Compatibility aliases: the worker plumbing moved to
# repro.service.engine (shared with PlacementService); these names stay
# importable here for existing callers and tests.
_PREPARED_CACHE = engine._PREPARED_CACHE
_portable_flow_entries = engine.portable_flow_entries
_portable_backend_entries = engine.portable_backend_entries
_init_suite_worker = engine.init_worker
_suite_task = engine.run_cell


def _resolve_store(store) -> Optional["CompiledDesignStore"]:
    if store is None:
        return None
    from repro.service.store import CompiledDesignStore

    if isinstance(store, CompiledDesignStore):
        return store
    return CompiledDesignStore(store)


def run_suite(scale: str = "bench",
              flows: Sequence[str] = DEFAULT_FLOWS,
              designs: Optional[Sequence[str]] = None,
              seed: Optional[int] = None,
              effort=None,
              verbose: bool = False,
              workers: Optional[int] = None,
              referee_backend: Optional[str] = None,
              trace: TraceSpec = None,
              options: Optional[RunOptions] = None,
              store=None) -> SuiteResult:
    """Run every flow on every (selected) suite design.

    ``workers=None`` (or 1) runs serially in-process; ``workers=N``
    submits the (design, flow) pairs to a
    :class:`repro.service.PlacementService` pool of ``N`` workers.
    Both modes produce identical rows in identical order.

    ``options`` carries the run knobs (:class:`RunOptions`: seed,
    effort, referee backend, trace — see :mod:`repro.api.run` for the
    one trace semantics shared by every entry point).  The legacy
    ``seed``/``effort``/``referee_backend``/``trace`` keywords still
    work but emit a :class:`DeprecationWarning`.

    ``store`` (a directory path or a
    :class:`repro.service.CompiledDesignStore`) persists compiled
    designs across runs and processes: cold entries are compiled once
    in the main process (``store.miss`` + ``store.compile`` spans),
    warm ones memory-map back (``store.hit``), and pooled workers
    attach the arrays through shared memory (``store.attach``) with
    zero ``prepare.*`` compile spans.  Rows are bit-identical with and
    without a store.

    Tracing records the main process plus every (design, flow) cell —
    including cells inside pool workers, whose span trees ride back on
    the pool's result path.  Payloads land on ``SuiteResult.trace`` in
    serial task order, main process first.  Tracing never changes rows
    (asserted in ``tests/test_obs_determinism.py``).
    """
    from repro.eval.tables import normalize_to_handfp

    opts = resolve_options(options, seed=seed, effort=effort,
                           referee_backend=referee_backend, trace=trace)
    start = perf_seconds()
    tracing = opts.tracing
    tracer = Tracer("main") if tracing else None
    result = SuiteResult()
    specs = [spec for spec in suite_specs(scale)
             if designs is None or spec.name in designs]
    flows = tuple(flows)
    tasks = [(spec.name, flow) for spec in specs for flow in flows]
    payloads: Dict[Tuple[str, str], Dict[str, Any]] = {}

    if workers is not None and workers > 1 and len(tasks) > 1:
        from repro.service.jobs import PlacementService, iter_completed

        with use_tracer(tracer) if tracing else nullcontext():
            with PlacementService(scale=scale,
                                  designs=[s.name for s in specs],
                                  store=store, workers=workers,
                                  options=opts) as service:
                handles = {(name, flow): service.submit(name, flow)
                           for name, flow in tasks}
                if verbose:
                    for handle in iter_completed(handles.values()):
                        print(handle.result().row(), flush=True)
                for name, flow in tasks:           # serial row order
                    handle = handles[(name, flow)]
                    metrics = handle.result()
                    result.design_info.setdefault(
                        name, handle.design_info)
                    result.rows.append(metrics)
                    if handle.trace_payload is not None:
                        payloads[(name, flow)] = handle.trace_payload
    else:
        suite_store = _resolve_store(store)
        with use_tracer(tracer) if tracing else nullcontext():
            active = tracer if tracing else NULL_TRACER
            for spec in specs:
                if suite_store is not None:
                    prepared = suite_store.ensure_spec(
                        spec).materialize()
                else:
                    prepared = prepare_design(spec)
                result.design_info[spec.name] = prepared.info()
                for flow in flows:
                    with active.span("suite.task", design=spec.name,
                                     flow=flow):
                        metrics = engine.execute_cell(prepared, flow,
                                                      opts)
                    result.rows.append(metrics)
                    if verbose:
                        print(metrics.row(), flush=True)

    normalize_to_handfp(result.rows)
    result.total_seconds = perf_seconds() - start
    if tracing:
        tracer.metrics.gauge("suite.total_seconds",
                             result.total_seconds)
        tracer.metrics.label("suite.scale", scale)
        result.trace = [tracer.payload()] + [
            payloads[key] for key in tasks if key in payloads]
        if opts.trace_path is not None:
            write_chrome_trace(opts.trace_path, result.trace)
    return result
