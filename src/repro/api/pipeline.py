"""The staged placement pipeline.

A :class:`Pipeline` is an ordered list of :class:`Stage` objects, each
a named function over a shared :class:`RunArtifacts` record.  Observers
receive ``on_stage_start`` / ``on_stage_end`` callbacks, which is how
progress reporting, tracing and per-stage profiling attach to a run
without the placer knowing about them.

:func:`build_hidap_pipeline` assembles the paper's Algorithm 1 as six
stages::

    flatten -> graphs -> shape-curves -> floorplan -> flip -> legalize

Stages skip work whose product is already present on the artifacts
(e.g. a cached ``flat``/``gnet``/``gseq`` injected from a
:class:`~repro.api.prepared.PreparedDesign`).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.api.artifacts import RunArtifacts
from repro.core.flipping import flip_macros
from repro.core.legalize import legalize_macros
from repro.core.ports import assign_port_positions
from repro.core.recursive import RecursiveFloorplanner
from repro.hiergraph.gnet import build_gnet
from repro.hiergraph.gseq import build_gseq
from repro.hiergraph.hierarchy import build_hierarchy
from repro.netlist.flatten import flatten
from repro.obs import current_tracer, perf_seconds
from repro.shapecurve.curve import ShapeCurve
from repro.shapecurve.generation import generate_shape_curves
from repro.slicing.tree import EvalStats

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class Stage:
    """One named step of a pipeline; ``run`` mutates the artifacts."""

    name: str
    run: Callable[[RunArtifacts], None]

    def __repr__(self) -> str:
        return f"Stage({self.name!r})"


class PipelineObserver:
    """Hook base class; subclass and override what you need.

    Observer exceptions never abort a run: :meth:`Pipeline.run` logs a
    warning (and records an ``observer.error`` trace event) and keeps
    placing.
    """

    def on_stage_start(self, stage: Stage,
                       artifacts: RunArtifacts) -> None:
        """Called before a stage runs."""

    def on_stage_end(self, stage: Stage, artifacts: RunArtifacts,
                     seconds: float) -> None:
        """Called after a stage completed, with its wall-clock time."""


class Pipeline:
    """An ordered, observable sequence of stages."""

    def __init__(self, stages: Sequence[Stage],
                 observers: Sequence[PipelineObserver] = ()):
        self.stages: Tuple[Stage, ...] = tuple(stages)
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in {names}")
        self.observers: List[PipelineObserver] = list(observers)

    def stage_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.stages)

    def add_observer(self, observer: PipelineObserver) -> "Pipeline":
        self.observers.append(observer)
        return self

    def _notify(self, callback_name: str, *args) -> None:
        """Invoke one observer hook on every observer, exception-safe.

        A broken observer must never abort a placement: failures are
        logged, recorded as tracer events, and swallowed.
        """
        tracer = current_tracer()
        for observer in self.observers:
            try:
                getattr(observer, callback_name)(*args)
            except Exception as exc:
                logger.warning("pipeline observer %r failed in %s: %s",
                               observer, callback_name, exc)
                tracer.event("observer.error",
                             observer=type(observer).__name__,
                             callback=callback_name, error=repr(exc))

    def run(self, artifacts: RunArtifacts) -> RunArtifacts:
        """Run every stage in order over ``artifacts``."""
        tracer = current_tracer()
        for stage in self.stages:
            self._notify("on_stage_start", stage, artifacts)
            with tracer.span(stage.name):
                start = perf_seconds()
                stage.run(artifacts)
                seconds = perf_seconds() - start
            artifacts.stage_seconds[stage.name] = seconds
            tracer.metrics.observe(f"stage.{stage.name}.seconds",
                                   seconds)
            self._notify("on_stage_end", stage, artifacts, seconds)
        return artifacts


# -- HiDaP stage implementations ------------------------------------------


def _stage_flatten(artifacts: RunArtifacts) -> None:
    if artifacts.flat is None:
        if artifacts.design is None:
            raise ValueError("artifacts carry neither a design nor a "
                             "flattened design")
        artifacts.flat = flatten(artifacts.design)


def _stage_graphs(artifacts: RunArtifacts) -> None:
    flat = artifacts.flat
    if artifacts.tree is None:
        artifacts.tree = build_hierarchy(flat)
    if artifacts.gnet is None:
        artifacts.gnet = build_gnet(flat)
    if artifacts.gseq is None:
        artifacts.gseq = build_gseq(artifacts.gnet, flat,
                                    min_bits=artifacts.config.min_bits)


def _merge_eval_counters(artifacts: RunArtifacts, stats) -> None:
    counters = stats.as_dict()
    for name, value in counters.items():
        artifacts.eval_counters[name] = (
            artifacts.eval_counters.get(name, 0) + value)
    # Mirror the legacy counters into the active trace's registry so
    # trace artifacts carry them without a second bookkeeping path.
    current_tracer().metrics.absorb(counters)


def _stage_shape_curves(artifacts: RunArtifacts) -> None:
    flat = artifacts.flat
    config = artifacts.config

    def own_macro_curves(node):
        return [ShapeCurve.for_rect(flat.cells[m].ctype.width,
                                    flat.cells[m].ctype.height)
                for m in node.own_macros]

    stats = EvalStats()
    by_node = generate_shape_curves(
        artifacts.tree.root,
        children_of=lambda n: n.children,
        own_macro_curves_of=own_macro_curves,
        config=config.shapegen_config(),
        stats=stats)
    artifacts.curves = {node.path: curve
                        for node, curve in by_node.items()}
    _merge_eval_counters(artifacts, stats)


def _stage_floorplan(artifacts: RunArtifacts) -> None:
    artifacts.port_positions = assign_port_positions(
        artifacts.flat.design, artifacts.die)
    floorplanner = RecursiveFloorplanner(
        flat=artifacts.flat, gnet=artifacts.gnet, gseq=artifacts.gseq,
        tree=artifacts.tree, curves=artifacts.curves,
        config=artifacts.config,
        port_positions=artifacts.port_positions)
    artifacts.placement = floorplanner.run(artifacts.die,
                                           flow_name=artifacts.flow_name)
    _merge_eval_counters(artifacts, floorplanner.stats)


def _stage_flip(artifacts: RunArtifacts) -> None:
    if artifacts.config.flipping:
        artifacts.flipped_macros = flip_macros(
            artifacts.flat, artifacts.require_placement(),
            artifacts.port_positions)


def _stage_legalize(artifacts: RunArtifacts) -> None:
    # Safety net: only moves macros that overlap or protrude from the
    # die (budgeting keeps blocks disjoint, but rare layouts violate
    # this).  config.legalize=False reproduces the raw placement.
    if artifacts.config.legalize:
        artifacts.legalizer_moves = legalize_macros(
            artifacts.require_placement())


#: The canonical stage order of the HiDaP flow.
HIDAP_STAGES: Tuple[str, ...] = ("flatten", "graphs", "shape-curves",
                                 "floorplan", "flip", "legalize")


def build_hidap_pipeline(observers: Sequence[PipelineObserver] = ()
                         ) -> Pipeline:
    """Algorithm 1 as a staged pipeline.

    Stages read their configuration from the
    :class:`~repro.api.artifacts.RunArtifacts` record they run over.
    """
    return Pipeline([
        Stage("flatten", _stage_flatten),
        Stage("graphs", _stage_graphs),
        Stage("shape-curves", _stage_shape_curves),
        Stage("floorplan", _stage_floorplan),
        Stage("flip", _stage_flip),
        Stage("legalize", _stage_legalize),
    ], observers=observers)
