"""The flow registry: one front door for every placement flow.

A *flow* is anything satisfying the :class:`Placer` protocol; the
registry maps flow names to factories so tools (CLI, suite runner,
``run_flow``) never hardcode dispatch ladders.  Third parties extend
the system with::

    from repro.api import register_flow

    register_flow("myflow", MyFlow, description="my experimental flow")

after which ``hidap place c1 --flow myflow`` and
``run_suite(flows=("myflow",))`` both work with no edits to repro
internals.

Flow *specs* may carry parameters: ``"hidap:lam=0.8,seed=3"`` resolves
the ``hidap`` factory and calls it with ``lam=0.8, seed=3``.  The
legacy spellings ``hidap-l<λ>`` are still accepted.
"""

from __future__ import annotations

import inspect
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.api.prepared import PreparedDesign
from repro.core.result import MacroPlacement


class FlowError(ValueError):
    """A flow cannot run as requested (bad spec, missing inputs...)."""


class UnknownFlowError(FlowError):
    """The requested flow name is not registered."""


@runtime_checkable
class Placer(Protocol):
    """What the registry hands out: a configured, runnable flow.

    ``place`` produces the macro placement; ``evaluate`` additionally
    runs the shared referee and returns a
    :class:`repro.api.run.FlowMetrics` row.  Flows that pick among
    candidate placements by referee score (best-of-three protocols)
    implement the selection inside these methods.
    """

    name: str

    def place(self, prepared: PreparedDesign) -> MacroPlacement:
        """Place the prepared design's macros on its die."""
        ...

    def evaluate(self, prepared: PreparedDesign,
                 clock_period: Optional[float] = None):
        """Place and score with the shared referee."""
        ...


FlowFactory = Callable[..., Placer]


class _Entry:
    __slots__ = ("factory", "description")

    def __init__(self, factory: FlowFactory, description: str):
        self.factory = factory
        self.description = description


_REGISTRY: Dict[str, _Entry] = {}


def register_flow(name: str, factory: FlowFactory, *,
                  description: str = "", overwrite: bool = False) -> None:
    """Register ``factory`` under ``name``.

    ``factory(**params)`` must return a :class:`Placer`; ``params``
    come from the flow spec (``name:key=value,...``) merged over the
    caller's defaults.  Re-registering an existing name raises unless
    ``overwrite=True``.
    """
    if not name or ":" in name or "," in name or "=" in name:
        raise FlowError(f"invalid flow name {name!r} "
                        "(':', ',' and '=' are reserved for specs)")
    if name in _REGISTRY and not overwrite:
        raise FlowError(f"flow {name!r} already registered "
                        "(pass overwrite=True to replace)")
    _REGISTRY[name] = _Entry(  # repro: noqa[REP009] worker-init replay
        factory, description)


def unregister_flow(name: str) -> None:
    """Remove a registered flow (no-op if absent)."""
    _REGISTRY.pop(name, None)


def available_flows() -> Tuple[str, ...]:
    """Sorted names of every registered flow."""
    return tuple(sorted(_REGISTRY))


def flow_descriptions() -> List[Tuple[str, str]]:
    """``(name, description)`` pairs, sorted by name."""
    return [(name, _REGISTRY[name].description)
            for name in available_flows()]


def _parse_value(text: str) -> Any:
    lowered = text.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_flow_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Split ``"name:key=value,..."`` into name and parameter dict.

    Legacy spellings are normalised: ``hidap-l0.8`` means
    ``hidap:lam=0.8``.
    """
    spec = spec.strip()
    if not spec:
        raise FlowError("empty flow spec")
    name, _, tail = spec.partition(":")
    params: Dict[str, Any] = {}
    if name.startswith("hidap-l") and name not in _REGISTRY:
        try:
            params["lam"] = float(name[len("hidap-l"):])
            name = "hidap"
        except ValueError:
            pass
    if tail:
        for item in tail.split(","):
            key, eq, value = item.partition("=")
            key, value = key.strip(), value.strip()
            if not eq or not key or not value:
                raise FlowError(
                    f"bad flow parameter {item!r} in {spec!r} "
                    "(expected key=value)")
            params[key] = _parse_value(value)
    return name, params


def split_flow_specs(text: str) -> List[str]:
    """Split a comma-separated list of flow specs.

    The comma doubles as the parameter separator inside a spec
    (``hidap:lam=0.2,flipping=false``), so a naive split breaks
    parameterized specs.  Flow names never contain ``:``/``,``/``=``
    (enforced by :func:`register_flow`), which disambiguates: a
    segment with ``=`` but no ``:`` continues the previous spec's
    parameters; anything else starts a new spec.

    >>> split_flow_specs("indeda,hidap:lam=0.2,flipping=false,handfp")
    ['indeda', 'hidap:lam=0.2,flipping=false', 'handfp']
    """
    specs: List[str] = []
    for segment in text.split(","):
        if specs and "=" in segment and ":" not in segment:
            specs[-1] += "," + segment
        elif segment.strip():
            specs.append(segment.strip())
        else:
            raise FlowError(f"empty flow spec in {text!r}")
    if not specs:
        raise FlowError("empty flow list")
    return specs


def get_flow(spec: str, **defaults: Any) -> Placer:
    """Resolve a flow spec to a configured :class:`Placer`.

    ``defaults`` (typically ``seed=...`` / ``effort=...``) are offered
    to the factory — silently dropped if its signature does not accept
    them — and overridden by parameters in the spec itself, which are
    always passed through (a factory rejecting them is an error).
    """
    name, params = parse_flow_spec(spec)
    entry = _REGISTRY.get(name)
    if entry is None:
        known = ", ".join(available_flows()) or "<none>"
        raise UnknownFlowError(
            f"unknown flow {name!r}; available flows: {known}")
    try:
        signature = inspect.signature(entry.factory)
        accepts_any = any(p.kind is p.VAR_KEYWORD
                          for p in signature.parameters.values())
        accepted = set(signature.parameters)
    except (TypeError, ValueError):        # builtins without signatures
        accepts_any, accepted = True, set()
    merged = {key: value for key, value in defaults.items()
              if accepts_any or key in accepted}
    merged.update(params)
    try:
        return entry.factory(**merged)
    except FlowError:
        raise
    except (TypeError, ValueError) as exc:
        raise FlowError(f"flow {name!r} rejected parameters "
                        f"{sorted(merged)}: {exc}") from exc
