"""Prepared designs: build once, share across every consumer.

The seed code rebuilt ``flatten`` / ``build_gnet`` / ``build_gseq`` in
each flow and again in the referee.  A :class:`PreparedDesign` carries
the design, its optional ground truth and die, and materialises the
derived structures lazily, exactly once; flows and the referee all pull
from the same cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.gen.designs import build_design, die_for, suite_specs
from repro.gen.spec import DesignSpec, GroundTruth
from repro.hiergraph.gnet import Gnet, build_gnet
from repro.hiergraph.gseq import Gseq, build_gseq
from repro.hiergraph.hierarchy import HierTree, build_hierarchy
from repro.netlist.core import Design
from repro.netlist.flatten import FlatDesign, flatten
from repro.obs import current_tracer

#: ``build_gseq`` width threshold used for the shared cache; flows whose
#: configuration matches reuse the cached graph, others rebuild.
DEFAULT_MIN_BITS = 2


@dataclass
class PreparedDesign:
    """A design plus lazily cached derived structures.

    ``flat``, ``gnet``, ``gseq`` and ``tree`` are built on first access
    and cached, so ``flatten``/``build_gnet``/``build_gseq`` run once
    per design instead of once per consumer (flow, referee, figure).
    """

    design: Design
    die_w: float
    die_h: float
    truth: Optional[GroundTruth] = None
    spec: Optional[DesignSpec] = None
    #: ``build_gseq`` width threshold the cached ``gseq`` was (or will
    #: be) built with.  ``None`` means a caller supplied a ``gseq`` of
    #: unknown provenance: the referee may use it, but placement flows
    #: must rebuild their own rather than treat it as the default
    #: cache.
    min_bits: Optional[int] = DEFAULT_MIN_BITS
    _flat: Optional[FlatDesign] = field(default=None, repr=False)
    _gnet: Optional[Gnet] = field(default=None, repr=False)
    _gseq: Optional[Gseq] = field(default=None, repr=False)
    _tree: Optional[HierTree] = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.design.name

    @property
    def die(self) -> Tuple[float, float]:
        return (self.die_w, self.die_h)

    @property
    def flat(self) -> FlatDesign:
        if self._flat is None:
            with current_tracer().span("prepare.flat",
                                       design=self.design.name):
                self._flat = flatten(self.design)
        return self._flat

    @property
    def gnet(self) -> Gnet:
        if self._gnet is None:
            with current_tracer().span("prepare.gnet",
                                       design=self.design.name):
                self._gnet = build_gnet(self.flat)
        return self._gnet

    @property
    def gseq(self) -> Gseq:
        if self._gseq is None:
            with current_tracer().span("prepare.gseq",
                                       design=self.design.name):
                self._gseq = build_gseq(
                    self.gnet, self.flat,
                    min_bits=(DEFAULT_MIN_BITS if self.min_bits is None
                              else self.min_bits))
        return self._gseq

    @property
    def tree(self) -> HierTree:
        if self._tree is None:
            with current_tracer().span("prepare.tree",
                                       design=self.design.name):
                self._tree = build_hierarchy(self.flat)
        return self._tree

    @property
    def net_arrays(self):
        """The referee's array-compiled netlist (built once, cached).

        The compile cache lives on the flat design itself
        (:func:`repro.metrics.net_arrays_for`), so every flow,
        baseline and suite worker evaluating this prepared design
        shares one :class:`~repro.metrics.netarrays.NetArrays`.  The
        ``prepare.net_arrays`` span fires inside the compile path, only
        on a cache miss.
        """
        from repro.metrics import net_arrays_for
        return net_arrays_for(self.flat)

    @property
    def stdcell_arrays(self):
        """The referee's compiled stdcell connectivity (built once).

        The clustered netlist and its
        :class:`~repro.metrics.stdcell_kernel.StdcellArrays` both cache
        on the flat design (:func:`repro.placement.cluster.clustered_for`
        / :func:`repro.metrics.stdcell_arrays_for`), shared like
        :attr:`net_arrays`.  ``prepare.stdcell_arrays`` fires only on a
        compile miss.
        """
        from repro.metrics import stdcell_arrays_for
        from repro.placement.cluster import clustered_for
        return stdcell_arrays_for(clustered_for(self.flat))

    @property
    def timing_arrays(self):
        """The referee's compiled sequential-edge view (built once).

        Cached on the design's :attr:`gseq`
        (:func:`repro.metrics.timing_arrays_for`); flows that rebuild a
        differently-thresholded graph compile their own.
        ``prepare.timing_arrays`` fires only on a compile miss.
        """
        from repro.metrics import timing_arrays_for
        return timing_arrays_for(self.gseq, self.flat)

    def info(self) -> str:
        """The suite table's design summary line."""
        text = f"{len(self.flat.cells)} cells, {len(self.flat.macros())} macros"
        if self.spec is not None:
            text += (f" (paper: {self.spec.paper_cells} cells, "
                     f"{self.spec.paper_macros} macros)")
        return text

    @classmethod
    def from_flat(cls, flat: FlatDesign, die_w: float, die_h: float,
                  truth: Optional[GroundTruth] = None,
                  gseq: Optional[Gseq] = None,
                  min_bits: Optional[int] = None) -> "PreparedDesign":
        """Wrap an already-flattened design (legacy entry points).

        A supplied ``gseq`` is used by the referee; unless ``min_bits``
        states what it was built with, placement flows treat its
        provenance as unknown and rebuild their own graphs, matching
        the pre-registry behaviour of ``run_flow``.
        """
        if gseq is None and min_bits is None:
            min_bits = DEFAULT_MIN_BITS
        prepared = cls(design=flat.design, die_w=die_w, die_h=die_h,
                       truth=truth, min_bits=min_bits)
        prepared._flat = flat
        prepared._gseq = gseq
        return prepared


def prepare_design(spec: DesignSpec) -> PreparedDesign:
    """Build one suite design, size its die, wrap it for caching."""
    with current_tracer().span("prepare.design", design=spec.name):
        design, truth = build_design(spec)
        die_w, die_h = die_for(design, utilization=spec.utilization)
    return PreparedDesign(design=design, die_w=die_w, die_h=die_h,
                          truth=truth, spec=spec)


def prepare_suite_design(name: str, scale: str = "bench") -> PreparedDesign:
    """Prepare a suite design by name (``c1`` .. ``c8``)."""
    for spec in suite_specs(scale):
        if spec.name == name:
            return prepare_design(spec)
    known = ", ".join(s.name for s in suite_specs(scale))
    raise ValueError(f"unknown suite design {name!r} (known: {known})")
