"""Typed records produced by a placement run.

:class:`RunArtifacts` replaces the mutable grab-bag of instance
attributes the original ``HiDaP`` class accumulated during a run.  A
pipeline fills the record stage by stage; afterwards every intermediate
(graphs, curves, port positions) and the final placement are available
as plain typed fields, so tools, figures and tests can inspect a run
without reaching into placer internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

from repro.core.config import HiDaPConfig
from repro.core.result import MacroPlacement
from repro.geometry.rect import Point, Rect
from repro.netlist.core import Design
from repro.netlist.flatten import FlatDesign

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.hiergraph.gnet import Gnet
    from repro.hiergraph.gseq import Gseq
    from repro.hiergraph.hierarchy import HierTree
    from repro.shapecurve.curve import ShapeCurve


@dataclass
class RunArtifacts:
    """Everything one placement run reads and produces.

    Inputs (``design``/``flat``, ``die``, ``config``) are set before
    the pipeline runs; each stage fills in the fields it owns.  Fields
    that are already populated are treated as caches and left alone,
    which is how prepared-design reuse avoids rebuilding ``flat`` /
    ``gnet`` / ``gseq`` for every consumer.
    """

    die: Rect
    config: HiDaPConfig = field(default_factory=HiDaPConfig)
    flow_name: str = "hidap"
    design: Optional[Design] = None

    # Stage products (in pipeline order).
    flat: Optional[FlatDesign] = None
    tree: Optional["HierTree"] = None
    gnet: Optional["Gnet"] = None
    gseq: Optional["Gseq"] = None
    curves: Optional[Dict[str, "ShapeCurve"]] = None
    port_positions: Optional[Dict[str, Point]] = None
    placement: Optional[MacroPlacement] = None

    # Bookkeeping.
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    flipped_macros: int = 0
    legalizer_moves: int = 0
    #: Evaluation-work counters of the two annealing stages
    #: (shape-curves and floorplan), accumulated as plain ints:
    #: ``cost_evals``, ``cost_cache_hits``, ``layout_nodes_total``,
    #: ``layout_nodes_expanded``, ``subtree_hits``/``subtree_misses``,
    #: ``curve_compose_hits``/``curve_compose_misses``.  Observers read
    #: them in ``on_stage_end`` to report incremental-evaluation reuse
    #: (see :class:`repro.slicing.tree.EvalStats`).  After the shared
    #: referee scores the run's placement, flows additionally merge in
    #: ``referee_backend`` (a string) and the per-metric
    #: ``referee_{stdcell,locate,hpwl,congestion,timing}_us``
    #: wall-clock counters (integer microseconds; ``locate`` only on
    #: array backends).
    eval_counters: Dict[str, object] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Wall-clock total over all recorded stages."""
        return sum(self.stage_seconds.values())

    def require_placement(self) -> MacroPlacement:
        """The final placement, or a clear error if the run is partial."""
        if self.placement is None:
            raise RuntimeError(
                "pipeline has not produced a placement yet "
                f"(stages run: {sorted(self.stage_seconds) or 'none'})")
        return self.placement
