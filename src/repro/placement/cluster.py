"""Standard-cell clustering for global placement.

Placing every bit cell individually is needless for floorplan metrics;
cells are grouped into physically-coherent clusters: one per register
array (the Gseq clusters) and one per chunk of combinational cells
within a module.  Cluster connectivity is the flat netlist projected
onto clusters, with parallel bit nets collapsed into weighted edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hiergraph.arrays import array_base
from repro.netlist.flatten import FlatDesign

#: Combinational cells per cluster chunk.
COMB_CHUNK = 24


@dataclass
class Cluster:
    """A movable group of standard cells."""

    index: int
    name: str
    cells: List[int] = field(default_factory=list)
    area: float = 0.0
    module_path: str = ""


@dataclass
class ClusteredNetlist:
    """Clusters plus their projected connectivity.

    ``nets`` are (cluster endpoints, macro endpoints, port endpoints,
    weight) tuples: a collapsed group of identical-endpoint bit nets
    with weight = bit count.
    """

    clusters: List[Cluster]
    cluster_of_cell: Dict[int, int]
    nets: List[Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[str, ...], int]]
    #: Dense ``cell index -> cluster index`` array (lazy; see
    #: :meth:`cell_cluster_array`).
    _cell_cluster: Optional[Tuple[int, "object"]] = field(
        default=None, repr=False, compare=False)

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def total_area(self) -> float:
        return sum(c.area for c in self.clusters)

    def cell_cluster_array(self, n_cells: int):
        """``cluster_of_cell`` as a dense int64 array (-1 = unclustered).

        Array kernels gather cluster coordinates per flat cell; building
        the dense map from the dict once per netlist (not once per
        metric call) keeps that gather cheap.  Cached per ``n_cells``.
        """
        import numpy as np

        cached = self._cell_cluster
        if cached is not None and cached[0] == n_cells:
            return cached[1]
        dense = np.full(n_cells, -1, dtype=np.int64)
        for cell_index, cluster in self.cluster_of_cell.items():
            if 0 <= cell_index < n_cells:
                dense[cell_index] = cluster
        self._cell_cluster = (n_cells, dense)
        return dense


def cluster_cells(flat: FlatDesign) -> ClusteredNetlist:
    """Group standard cells into clusters and project the netlist."""
    clusters: List[Cluster] = []
    cluster_of_cell: Dict[int, int] = {}

    def new_cluster(name: str, module_path: str) -> Cluster:
        cluster = Cluster(len(clusters), name, module_path=module_path)
        clusters.append(cluster)
        return cluster

    # Register arrays cluster by (module, base name); combinational
    # cells chunk per module.
    reg_clusters: Dict[Tuple[str, str], Cluster] = {}
    comb_open: Dict[str, Cluster] = {}
    for cell in flat.cells:
        if cell.is_macro:
            continue
        if cell.is_flop:
            base, _ = array_base(cell.local_name)
            key = (cell.module_path, base)
            cluster = reg_clusters.get(key)
            if cluster is None:
                cluster = new_cluster(f"{cell.module_path}:{base}",
                                      cell.module_path)
                reg_clusters[key] = cluster
        else:
            cluster = comb_open.get(cell.module_path)
            if cluster is None or len(cluster.cells) >= COMB_CHUNK:
                suffix = 0 if cluster is None else len(cluster.cells)
                cluster = new_cluster(
                    f"{cell.module_path}:comb{cell.index}",
                    cell.module_path)
                comb_open[cell.module_path] = cluster
        cluster.cells.append(cell.index)
        cluster.area += cell.ctype.area
        cluster_of_cell[cell.index] = cluster.index

    # Project nets onto clusters; collapse identical endpoint sets.
    collapsed: Dict[Tuple, int] = {}
    for net in flat.nets:
        cluster_eps = set()
        macro_eps = set()
        for cell_index, _pin, _bit in net.endpoints:
            if cell_index in cluster_of_cell:
                cluster_eps.add(cluster_of_cell[cell_index])
            else:
                macro_eps.add(cell_index)
        port_eps = {name for name, _bit in net.top_ports}
        if len(cluster_eps) + len(macro_eps) + len(port_eps) < 2:
            continue
        if not cluster_eps and not macro_eps:
            continue
        key = (tuple(sorted(cluster_eps)), tuple(sorted(macro_eps)),
               tuple(sorted(port_eps)))
        collapsed[key] = collapsed.get(key, 0) + 1

    nets = [(c, m, p, w) for (c, m, p), w in sorted(collapsed.items())]
    return ClusteredNetlist(clusters=clusters,
                            cluster_of_cell=cluster_of_cell, nets=nets)


def _fingerprint(flat: FlatDesign) -> Tuple[int, int, int]:
    """Cheap staleness check for the per-design clustering cache."""
    rows = sum(len(net.endpoints) + len(net.top_ports)
               for net in flat.nets)
    return (len(flat.cells), len(flat.nets), rows)


def clustered_for(flat: FlatDesign) -> ClusteredNetlist:
    """The clustered netlist for ``flat``, built once and cached on it.

    Clustering is a pure function of the flat netlist (no placement, no
    RNG), so every referee evaluation of the same design can share one
    :class:`ClusteredNetlist` — the same sharing discipline as
    :func:`repro.metrics.net_arrays_for`.  The cache is invalidated when
    the design's cell/net counts change; deeper mutations require
    dropping ``flat._clustered`` manually.
    """
    fingerprint = _fingerprint(flat)
    cached = getattr(flat, "_clustered", None)
    if cached is not None and cached[0] == fingerprint:
        return cached[1]
    clustered = cluster_cells(flat)
    flat._clustered = (fingerprint, clustered)
    return clustered
