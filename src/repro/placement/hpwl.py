"""Bit-level half-perimeter wirelength.

The paper reports wirelength in meters after cell placement.  We keep
abstract site units internally and convert with a nominal 1 unit = 1 µm
so tables read in familiar magnitudes; all comparisons are ratios, so
the conversion constant is cosmetic.

:func:`hpwl_report` dispatches through the referee backend registry
(:mod:`repro.metrics`): the ``numpy`` default runs the batched
segmented-min/max kernel over compiled
:class:`~repro.metrics.netarrays.NetArrays`; :func:`hpwl_reference`
keeps the original per-net loop as the ``python`` oracle.  Both return
bit-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.result import MacroPlacement
from repro.geometry.rect import Point
from repro.netlist.flatten import FlatDesign
from repro.placement.stdcell import CellPlacement

UNITS_PER_METER = 1e6      # 1 site unit == 1 um


@dataclass
class HpwlReport:
    """Wirelength totals."""

    total_units: float
    n_nets: int
    macro_net_units: float       # nets touching at least one macro pin

    @property
    def meters(self) -> float:
        return self.total_units / UNITS_PER_METER

    def __repr__(self) -> str:
        return f"HpwlReport({self.meters:.3f} m over {self.n_nets} nets)"


def hpwl_report(flat: FlatDesign, placement: MacroPlacement,
                cells: CellPlacement,
                port_positions: Dict[str, Point],
                backend: Optional[str] = None,
                arrays=None) -> HpwlReport:
    """HPWL over every flat bit net with at least two located endpoints.

    ``backend`` selects a referee backend by name (``None`` → the
    registry default, normally ``numpy``); ``arrays`` optionally passes
    pre-compiled :class:`~repro.metrics.netarrays.NetArrays` to skip
    the per-design compile cache lookup.
    """
    from repro.metrics import get_backend

    resolved = get_backend(backend)
    return resolved.hpwl(flat, placement, cells, port_positions,
                         arrays=arrays)


def hpwl_reference(flat: FlatDesign, placement: MacroPlacement,
                   cells: CellPlacement,
                   port_positions: Dict[str, Point]) -> HpwlReport:
    """The per-net reference loop (the ``python`` backend's kernel)."""
    total = 0.0
    macro_total = 0.0
    n_nets = 0
    for net in flat.nets:
        min_x = min_y = float("inf")
        max_x = max_y = float("-inf")
        located = 0
        has_macro = False
        for cell_index, pin, bit in net.endpoints:
            cell = flat.cells[cell_index]
            if cell.is_macro:
                placed = placement.macros.get(cell_index)
                if placed is None:
                    continue
                pos = placed.pin_position(flat, pin, bit)
                has_macro = True
            else:
                pos = cells.cell_pos(cell_index)
                if pos is None:
                    continue
            located += 1
            min_x = min(min_x, pos.x)
            max_x = max(max_x, pos.x)
            min_y = min(min_y, pos.y)
            max_y = max(max_y, pos.y)
        for port_name, _bit in net.top_ports:
            pos = port_positions.get(port_name)
            if pos is None:
                continue
            located += 1
            min_x = min(min_x, pos.x)
            max_x = max(max_x, pos.x)
            min_y = min(min_y, pos.y)
            max_y = max(max_y, pos.y)
        if located < 2:
            continue
        length = (max_x - min_x) + (max_y - min_y)
        total += length
        if has_macro:
            macro_total += length
        n_nets += 1
    return HpwlReport(total_units=total, n_nets=n_nets,
                      macro_net_units=macro_total)
