"""Quadratic global placement with grid-diffusion spreading.

The placer minimizes squared wirelength with fixed anchors (macro pins
and chip ports), the classic analytical formulation: one sparse SPD
system per axis, solved with conjugate gradients.  Net connectivity uses
the bounded-clique model.  The raw quadratic solution collapses into
dense clumps, so a diffusion pass then iteratively pushes area out of
overfull bins — macro bins have zero capacity, which is how a macro
placement's quality propagates into the cell placement and the
wirelength / congestion / timing metrics measured on it.

:func:`place_cells` dispatches the clique-system assembly (the profiled
hot loop) through the referee backend registry (:mod:`repro.metrics`):
the ``numpy`` default streams the compiled
:class:`~repro.metrics.stdcell_kernel.StdcellArrays` through ordered
``np.add.at`` scatters; :func:`_build_system` keeps the original double
loop as the ``python`` oracle.  Both assemble bit-identical systems, so
the solved cell placement is backend-independent; the conjugate-gradient
solve and the diffusion pass are shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
from scipy.sparse import coo_matrix

from repro.core.result import MacroPlacement
from repro.geometry.rect import Point, Rect
from repro.netlist.flatten import FlatDesign
from repro.placement.cluster import ClusteredNetlist, clustered_for

#: Nets wider than this endpoint count get a weakened clique weight.
_CLIQUE_CAP = 12


@dataclass
class PlacerConfig:
    """Knobs for the quadratic + diffusion placer."""

    bins: int = 24
    diffusion_iters: int = 48
    target_density: float = 0.82
    cg_tol: float = 1e-6
    cg_maxiter: int = 400
    #: Weight pulling clusters toward their hierarchy block rectangle
    #: center (a mild region constraint reflecting the floorplan).
    region_pull: float = 0.04


@dataclass
class CellPlacement:
    """Placed cluster positions plus lookups used by the metric layers."""

    clustered: ClusteredNetlist
    x: np.ndarray
    y: np.ndarray
    die: Rect

    def cluster_pos(self, cluster_index: int) -> Point:
        return Point(float(self.x[cluster_index]),
                     float(self.y[cluster_index]))

    def cell_pos(self, cell_index: int) -> Optional[Point]:
        cluster = self.clustered.cluster_of_cell.get(cell_index)
        if cluster is None:
            return None
        return self.cluster_pos(cluster)


def _anchor_positions(flat: FlatDesign, placement: MacroPlacement,
                      port_positions: Dict[str, Point]):
    """Fixed positions: macro centers and chip ports."""
    macro_pos: Dict[int, Point] = {
        index: placed.rect.center
        for index, placed in placement.macros.items()}
    return macro_pos, port_positions


def _build_system(clustered: ClusteredNetlist, flat: FlatDesign,
                  placement: MacroPlacement,
                  port_positions: Dict[str, Point],
                  config: PlacerConfig):
    """Assemble the Laplacian and fixed-anchor right-hand sides."""
    n = clustered.n_clusters
    macro_pos, port_pos = _anchor_positions(flat, placement, port_positions)

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    diag = np.zeros(n)
    bx = np.zeros(n)
    by = np.zeros(n)

    def add_pair(i: int, j: int, w: float) -> None:
        rows.append(i)
        cols.append(j)
        vals.append(-w)
        rows.append(j)
        cols.append(i)
        vals.append(-w)
        diag[i] += w
        diag[j] += w

    def add_fixed(i: int, p: Point, w: float) -> None:
        diag[i] += w
        bx[i] += w * p.x
        by[i] += w * p.y

    for cluster_eps, macro_eps, port_eps, weight in clustered.nets:
        fixed_pts = [macro_pos[m] for m in macro_eps if m in macro_pos]
        fixed_pts += [port_pos[p] for p in port_eps if p in port_pos]
        k = len(cluster_eps) + len(fixed_pts)
        if k < 2:
            continue
        w = weight / max(1, min(k, _CLIQUE_CAP) - 1)
        eps = list(cluster_eps)
        for a in range(len(eps)):
            for b in range(a + 1, len(eps)):
                add_pair(eps[a], eps[b], w)
            for p in fixed_pts:
                add_fixed(eps[a], p, w)

    # Mild pull toward each cluster's hierarchy block center.
    for cluster in clustered.clusters:
        if not cluster.cells:
            continue
        region = placement.region_of_cell(flat, cluster.cells[0])
        add_fixed(cluster.index, region.center,
                  config.region_pull * max(1.0, cluster.area) ** 0.5)

    # Guarantee non-singularity for isolated clusters.
    die_center = placement.die.center
    for i in range(n):
        if diag[i] <= 0:
            add_fixed(i, die_center, 1e-3)

    laplacian = coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    laplacian.setdiag(diag)
    return laplacian, bx, by


def solve_quadratic_xy(laplacian, bx: np.ndarray, by: np.ndarray,
                       x0: np.ndarray, y0: np.ndarray, *,
                       rtol: float = 1e-6, maxiter: int = 400):
    """Solve the x and y quadratic systems with one paired CG loop.

    Both axes share the same SPD Laplacian, so each conjugate-gradient
    iteration streams the sparse matrix once for both right-hand sides
    (a single two-column matvec) instead of twice.  Every per-axis
    quantity — residuals, dot products, alpha/beta, the convergence
    test ``norm(r) < rtol * norm(b)`` — is kept on its own contiguous
    vector, replicating the standard unpreconditioned CG recurrence
    (scipy's ``cg``) operation for operation, and CSR matvec columns
    accumulate in the same order as single matvecs; the solutions are
    therefore bit-identical to two sequential ``scipy`` solves (the
    referee benchmark enforces exactly that).  Once one axis converges
    the loop continues the other with single-column matvecs.
    """
    states = []
    for b, start in ((bx, x0), (by, y0)):
        b = np.asarray(b, dtype=np.float64)
        x = np.array(start, dtype=np.float64, copy=True)
        bnrm2 = np.linalg.norm(b)
        if bnrm2 == 0:
            states.append({"x": b.copy(), "done": True})
            continue
        r = b - laplacian @ x if x.any() else b.copy()
        states.append({"x": x, "r": r, "p": None, "rho_prev": None,
                       "atol": rtol * bnrm2, "done": False})

    pair = np.empty((laplacian.shape[0], 2))
    for iteration in range(maxiter):
        for state in states:
            if not state["done"] \
                    and np.linalg.norm(state["r"]) < state["atol"]:
                state["done"] = True
        active = [state for state in states if not state["done"]]
        if not active:
            break
        for state in active:
            # Unpreconditioned: z is the residual itself.
            rho = np.dot(state["r"], state["r"])
            if state["rho_prev"] is not None:
                state["p"] *= rho / state["rho_prev"]
                state["p"] += state["r"]
            else:
                state["p"] = state["r"].copy()
            state["rho"] = rho
        if len(active) == 2:
            pair[:, 0] = active[0]["p"]
            pair[:, 1] = active[1]["p"]
            product = laplacian @ pair
            qs = (np.ascontiguousarray(product[:, 0]),
                  np.ascontiguousarray(product[:, 1]))
        else:
            qs = (laplacian @ active[0]["p"],)
        for state, q in zip(active, qs):
            alpha = state["rho"] / np.dot(state["p"], q)
            state["x"] += alpha * state["p"]
            state["r"] -= alpha * q
            state["rho_prev"] = state["rho"]
    return states[0]["x"], states[1]["x"]


def _diffuse(clustered: ClusteredNetlist, x: np.ndarray, y: np.ndarray,
             die: Rect, macro_rects: List[Rect],
             config: PlacerConfig) -> None:
    """Push cluster area out of overfull / blocked bins, in place."""
    bins = config.bins
    bw = die.w / bins
    bh = die.h / bins

    capacity = np.full((bins, bins), bw * bh * config.target_density)
    for rect in macro_rects:
        i0 = max(0, int((rect.x - die.x) / bw))
        i1 = min(bins - 1, int((rect.x2 - die.x - 1e-9) / bw))
        j0 = max(0, int((rect.y - die.y) / bh))
        j1 = min(bins - 1, int((rect.y2 - die.y - 1e-9) / bh))
        for i in range(i0, i1 + 1):
            for j in range(j0, j1 + 1):
                cell_bin = Rect(die.x + i * bw, die.y + j * bh, bw, bh)
                free = cell_bin.area - cell_bin.intersection(rect).area
                capacity[i, j] = min(capacity[i, j],
                                     free * config.target_density)

    areas = np.array([c.area for c in clustered.clusters])
    n = len(areas)
    for _ in range(config.diffusion_iters):
        np.clip(x, die.x + 1e-6, die.x2 - 1e-6, out=x)
        np.clip(y, die.y + 1e-6, die.y2 - 1e-6, out=y)
        bi = np.minimum(((x - die.x) / bw).astype(int), bins - 1)
        bj = np.minimum(((y - die.y) / bh).astype(int), bins - 1)
        usage = np.zeros((bins, bins))
        np.add.at(usage, (bi, bj), areas)
        over = usage - capacity
        if over.max() <= 0:
            break
        # Gradient of overflow -> displacement field per bin.
        pressure = np.maximum(over, 0.0) / (capacity + 1e-9)
        gx = np.zeros_like(pressure)
        gy = np.zeros_like(pressure)
        gx[:-1, :] += pressure[1:, :] - pressure[:-1, :]
        gx[1:, :] += pressure[1:, :] - pressure[:-1, :]
        gy[:, :-1] += pressure[:, 1:] - pressure[:, :-1]
        gy[:, 1:] += pressure[:, 1:] - pressure[:, :-1]
        # Clusters in overfull bins move down-gradient plus jitterless
        # deterministic tie-break by index parity.
        step = 0.5 * max(bw, bh)
        move = pressure[bi, bj] > 0
        x[move] -= np.sign(gx[bi, bj][move]) * step
        y[move] -= np.sign(gy[bi, bj][move]) * step
    np.clip(x, die.x + 1e-6, die.x2 - 1e-6, out=x)
    np.clip(y, die.y + 1e-6, die.y2 - 1e-6, out=y)


def place_cells(flat: FlatDesign, placement: MacroPlacement,
                port_positions: Dict[str, Point],
                config: Optional[PlacerConfig] = None,
                clustered: Optional[ClusteredNetlist] = None,
                backend=None) -> CellPlacement:
    """Place standard-cell clusters given a macro placement.

    ``clustered`` defaults to the per-design cache
    (:func:`repro.placement.cluster.clustered_for`), so repeated referee
    evaluations share one clustering; ``backend`` selects the referee
    backend assembling the quadratic system (``None`` → the
    :mod:`repro.metrics` registry default).
    """
    from repro.metrics import get_backend

    config = config or PlacerConfig()
    clustered = clustered if clustered is not None else clustered_for(flat)
    n = clustered.n_clusters
    die = placement.die
    if n == 0:
        return CellPlacement(clustered, np.zeros(0), np.zeros(0), die)

    laplacian, bx, by = get_backend(backend).stdcell_system(
        flat, placement, port_positions, config, clustered)
    x0 = np.full(n, die.center.x)
    y0 = np.full(n, die.center.y)
    x, y = solve_quadratic_xy(laplacian, bx, by, x0, y0,
                              rtol=config.cg_tol,
                              maxiter=config.cg_maxiter)

    _diffuse(clustered, x, y, die,
             [m.rect for m in placement.macros.values()], config)
    return CellPlacement(clustered, x, y, die)
