"""Standard-cell placement: the metric-extraction substrate.

The paper measures floorplans *after standard-cell placement with the
same commercial tool* for every flow.  This package reproduces that
referee: standard cells are clustered (register arrays and per-module
combinational groups), placed by quadratic (conjugate-gradient) global
placement with macros as fixed anchors, then spread out of overfull
bins and macro blockages by grid diffusion.  Wirelength is bit-level
HPWL over the flat netlist.
"""

from repro.placement.cluster import (
    Cluster,
    ClusteredNetlist,
    cluster_cells,
    clustered_for,
)
from repro.placement.hpwl import hpwl_report, HpwlReport
from repro.placement.stdcell import CellPlacement, PlacerConfig, place_cells

__all__ = [
    "CellPlacement",
    "Cluster",
    "ClusteredNetlist",
    "HpwlReport",
    "PlacerConfig",
    "cluster_cells",
    "clustered_for",
    "hpwl_report",
    "place_cells",
]
