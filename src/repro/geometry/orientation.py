"""Macro orientations.

A macro has eight legal orientations (the dihedral group of the
rectangle).  Following common EDA naming (DEF):

======  =======================  =============
name    meaning                  footprint
======  =======================  =============
N       as drawn                 (w, h)
FN      mirrored about Y         (w, h)
S       rotated 180 degrees      (w, h)
FS      mirrored about X         (w, h)
E       rotated 90 cw            (h, w)
FE      mirrored + rotated       (h, w)
W       rotated 90 ccw           (h, w)
FW      mirrored + rotated       (h, w)
======  =======================  =============

The placer only needs two things from an orientation: the transformed
footprint and the transformed offset of a pin given in "as drawn"
coordinates relative to the macro's lower-left corner.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple


class Orientation(Enum):
    """One of the eight rectangle symmetries."""

    N = "N"
    FN = "FN"
    S = "S"
    FS = "FS"
    E = "E"
    FE = "FE"
    W = "W"
    FW = "FW"

    @property
    def swaps_sides(self) -> bool:
        """Whether the footprint becomes (h, w) instead of (w, h)."""
        return self in (Orientation.E, Orientation.FE,
                        Orientation.W, Orientation.FW)

    def footprint(self, w: float, h: float) -> Tuple[float, float]:
        """Footprint (width, height) of a w-by-h macro in this orientation."""
        if self.swaps_sides:
            return (h, w)
        return (w, h)

    def pin_offset(self, px: float, py: float,
                   w: float, h: float) -> Tuple[float, float]:
        """Transform a pin offset from "as drawn" (orientation N) coordinates.

        ``(px, py)`` is the pin offset from the macro's lower-left corner
        when drawn in orientation N; the result is the offset from the
        lower-left corner of the *oriented* footprint.
        """
        if self is Orientation.N:
            return (px, py)
        if self is Orientation.FN:
            return (w - px, py)
        if self is Orientation.S:
            return (w - px, h - py)
        if self is Orientation.FS:
            return (px, h - py)
        if self is Orientation.E:     # rotate 90 clockwise
            return (py, w - px)
        if self is Orientation.FE:    # FN then rotate 90 clockwise
            return (py, px)
        if self is Orientation.W:     # rotate 90 counter-clockwise
            return (h - py, px)
        if self is Orientation.FW:    # FN then rotate 90 counter-clockwise
            return (h - py, w - px)
        raise AssertionError(f"unhandled orientation {self}")

    @staticmethod
    def flips_of(orient: "Orientation"):
        """The orientations reachable from ``orient`` by mirroring only.

        Mirroring preserves the footprint, so a placed macro may freely
        move inside this group during the flipping post-pass.
        """
        if orient.swaps_sides:
            return (Orientation.E, Orientation.FE,
                    Orientation.W, Orientation.FW)
        return (Orientation.N, Orientation.FN,
                Orientation.S, Orientation.FS)


FOOTPRINT_PRESERVING = (Orientation.N, Orientation.FN,
                        Orientation.S, Orientation.FS)
SIDE_SWAPPING = (Orientation.E, Orientation.FE,
                 Orientation.W, Orientation.FW)
