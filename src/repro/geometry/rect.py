"""Axis-aligned rectangles and points.

All floorplan geometry uses a lower-left origin: a :class:`Rect` is the
half-open region ``[x, x + w) x [y, y + h)``.  Coordinates are floats in
abstract "site" units; the evaluation layer decides the physical scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A point in the plane."""

    x: float
    y: float

    def manhattan(self, other: "Point") -> float:
        """Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean(self, other: "Point") -> float:
        """Euclidean (L2) distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle anchored at its lower-left corner."""

    x: float
    y: float
    w: float
    h: float

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise ValueError(f"rectangle sides must be non-negative: {self}")

    # -- basic queries ----------------------------------------------------

    @property
    def x2(self) -> float:
        """Right edge coordinate."""
        return self.x + self.w

    @property
    def y2(self) -> float:
        """Top edge coordinate."""
        return self.y + self.h

    @property
    def area(self) -> float:
        return self.w * self.h

    @property
    def center(self) -> Point:
        return Point(self.x + self.w / 2.0, self.y + self.h / 2.0)

    @property
    def aspect_ratio(self) -> float:
        """Height over width; ``inf`` for zero-width rectangles."""
        if self.w == 0:
            return math.inf
        return self.h / self.w

    def contains_point(self, p: Point, tol: float = 0.0) -> bool:
        """Whether ``p`` lies inside (or within ``tol`` of) the rectangle."""
        return (self.x - tol <= p.x <= self.x2 + tol
                and self.y - tol <= p.y <= self.y2 + tol)

    def contains_rect(self, other: "Rect", tol: float = 1e-9) -> bool:
        """Whether ``other`` lies fully inside this rectangle."""
        return (other.x >= self.x - tol and other.y >= self.y - tol
                and other.x2 <= self.x2 + tol and other.y2 <= self.y2 + tol)

    def overlaps(self, other: "Rect", tol: float = 1e-9) -> bool:
        """Whether the open interiors of the two rectangles intersect.

        Degenerate (zero-area) rectangles have empty interiors and never
        overlap anything.
        """
        if min(self.w, self.h, other.w, other.h) <= tol:
            return False
        return (self.x < other.x2 - tol and other.x < self.x2 - tol
                and self.y < other.y2 - tol and other.y < self.y2 - tol)

    def intersection(self, other: "Rect") -> "Rect":
        """The overlap region (possibly empty, reported as a 0-area rect)."""
        x = max(self.x, other.x)
        y = max(self.y, other.y)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        return Rect(x, y, max(0.0, x2 - x), max(0.0, y2 - y))

    def union_bbox(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both rectangles."""
        x = min(self.x, other.x)
        y = min(self.y, other.y)
        x2 = max(self.x2, other.x2)
        y2 = max(self.y2, other.y2)
        return Rect(x, y, x2 - x, y2 - y)

    # -- transforms -------------------------------------------------------

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x + dx, self.y + dy, self.w, self.h)

    def inset(self, margin: float) -> "Rect":
        """Shrink by ``margin`` on every side (clamped at zero size)."""
        w = max(0.0, self.w - 2 * margin)
        h = max(0.0, self.h - 2 * margin)
        return Rect(self.x + margin, self.y + margin, w, h)

    def corners(self) -> tuple:
        """The four corner points (ll, lr, ur, ul)."""
        return (Point(self.x, self.y), Point(self.x2, self.y),
                Point(self.x2, self.y2), Point(self.x, self.y2))


def bounding_box(rects) -> Rect:
    """Smallest rectangle covering every rectangle in ``rects``.

    Raises ``ValueError`` on an empty sequence.
    """
    rects = list(rects)
    if not rects:
        raise ValueError("bounding_box of an empty collection")
    box = rects[0]
    for r in rects[1:]:
        box = box.union_bbox(r)
    return box


def total_overlap_area(rects) -> float:
    """Sum of pairwise overlap areas; zero for a legal placement."""
    rects = list(rects)
    total = 0.0
    for i, a in enumerate(rects):
        for b in rects[i + 1:]:
            if a.overlaps(b):
                total += a.intersection(b).area
    return total
