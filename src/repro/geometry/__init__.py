"""Planar geometry primitives shared by every placement component.

The package deliberately stays tiny: axis-aligned rectangles, points and
the eight macro orientations are all the geometry the floorplanner needs.
"""

from repro.geometry.orientation import Orientation
from repro.geometry.rect import Point, Rect

__all__ = ["Point", "Rect", "Orientation"]
