#!/usr/bin/env python
"""The repo lint gate (``make lint``).

Runs ``ruff check`` (configuration in ``pyproject.toml``) when ruff is
installed — the CI path.  Containers without ruff fall back to a
builtin checker implementing the same selected rules, so the gate means
the same thing everywhere:

* E9    syntax / compile errors
* E501  line longer than the configured limit
* W291/W293  trailing whitespace
* W292  missing newline at end of file
* F401  module-level import bound but never used

The fallback intentionally stays a subset: anything it flags, ruff
flags too, so a green local run cannot go red in CI for a rule the
container could not evaluate.
"""

from __future__ import annotations

import ast
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TARGETS = ("src", "tests", "benchmarks", "examples", "tools")
LINE_LIMIT = 88


def run_ruff(command) -> int:
    """Delegate to ruff (the authoritative implementation)."""
    return subprocess.call(
        [*command, "check", *(str(REPO / target) for target in TARGETS)])


def _used_names(tree: ast.AST) -> set:
    """Every identifier a module references, incl. quoted annotations."""
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            used.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # Forward references ("FlatDesign"), __all__ entries and
            # doctest snippets keep their imports alive.
            for token in node.value.replace(".", " ").split():
                if token.isidentifier():
                    used.add(token)
    return used


def _unused_imports(tree: ast.Module):
    """(line, name) of module-level imports never referenced (F401)."""
    imported = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                imported.append((node.lineno, name))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                imported.append((node.lineno,
                                 alias.asname or alias.name))
    used = _used_names(tree)
    return [(line, name) for line, name in imported if name not in used]


def check_file(path: Path) -> list:
    findings = []
    text = path.read_text()
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as error:
        return [(path, error.lineno or 0,
                 f"E9 syntax error: {error.msg}")]

    for number, line in enumerate(text.splitlines(), start=1):
        if len(line) > LINE_LIMIT:
            findings.append((path, number,
                             f"E501 line too long ({len(line)} > "
                             f"{LINE_LIMIT})"))
        if line != line.rstrip():
            code = "W293" if not line.strip() else "W291"
            findings.append((path, number, f"{code} trailing whitespace"))
    if text and not text.endswith("\n"):
        findings.append((path, text.count("\n") + 1,
                         "W292 no newline at end of file"))

    if path.name != "__init__.py":
        for line, name in _unused_imports(tree):
            findings.append((path, line,
                             f"F401 {name!r} imported but unused"))
    return findings


def run_fallback() -> int:
    findings = []
    for target in TARGETS:
        root = REPO / target
        if not root.exists():
            continue
        for path in sorted(root.rglob("*.py")):
            findings.extend(check_file(path))
    for path, line, message in findings:
        print(f"{path.relative_to(REPO)}:{line}: {message}")
    label = "finding" if len(findings) == 1 else "findings"
    print(f"lint fallback (ruff not installed): {len(findings)} {label}")
    return 1 if findings else 0


def main() -> int:
    try:
        import ruff  # noqa: F401 - availability probe only
        return run_ruff([sys.executable, "-m", "ruff"])
    except ImportError:
        pass
    if shutil.which("ruff") is not None:
        return run_ruff(["ruff"])
    return run_fallback()


if __name__ == "__main__":
    raise SystemExit(main())
