#!/usr/bin/env python
"""The repo lint gate (``make lint``).

Runs ``ruff check`` when ruff is installed — the CI path.  Containers
without ruff fall back to the builtin checker in
:mod:`tools.analyze.lintrules`, which implements a subset of the same
rules and reads the *same* ``[tool.ruff]`` configuration from
``pyproject.toml`` — one source of truth, so local and CI lint can
never diverge on the rule set.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO) not in sys.path:
    sys.path.insert(0, str(REPO))

from tools.analyze.lintrules import TARGETS, run_fallback  # noqa: E402


def run_ruff(command) -> int:
    """Delegate to ruff (the authoritative implementation)."""
    return subprocess.call(
        [*command, "check", *(str(REPO / target) for target in TARGETS)])


def main() -> int:
    try:
        import ruff  # noqa: F401 - availability probe only
        return run_ruff([sys.executable, "-m", "ruff"])
    except ImportError:
        pass
    if shutil.which("ruff") is not None:
        return run_ruff(["ruff"])
    return run_fallback()


if __name__ == "__main__":
    raise SystemExit(main())
