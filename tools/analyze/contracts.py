"""REP004: backend-contract completeness via registry introspection.

Imports :mod:`repro.metrics` and proves, for every registered referee
backend, that all five kernels — ``stdcell_system``, ``hpwl``,
``congestion``, ``timing``, ``affinity_distance`` — are implemented
with oracle-matching signatures.  "Implemented" means the method either
overrides the base class or inherits one of the base *reference*
implementations (``stdcell_system``/``timing`` delegate to the python
oracle, which is bit-identical by contract); inheriting a
``NotImplementedError`` stub (``hpwl``/``congestion``/
``affinity_distance``) fails the contract.  Signatures must lead with
the oracle's parameter names in the oracle's order, so a backend can
add trailing keyword knobs but can never silently reorder or rename
the referee's calling convention.

Run ``make analyze`` (or ``python -m tools.analyze``) after
``register_backend`` while developing a new backend: REP004 findings
name the backend, the kernel and the defect.
"""

from __future__ import annotations

import inspect
from pathlib import Path
from typing import List

from tools.analyze.rules import Finding, Rule, register_rule

#: The five referee kernels every backend owns.
KERNELS = ("stdcell_system", "hpwl", "congestion", "timing",
           "affinity_distance")
#: Kernels whose base implementation is a stub raising
#: ``NotImplementedError`` — these must be overridden.
STUB_KERNELS = ("hpwl", "congestion", "affinity_distance")


def _signature_defect(base_cls, backend_cls, kernel: str):
    """Mismatch description, or ``None`` when signatures line up."""
    oracle = [name for name in
              inspect.signature(getattr(base_cls, kernel)).parameters][1:]
    impl_sig = inspect.signature(getattr(backend_cls, kernel))
    params = list(impl_sig.parameters.values())[1:]
    if any(p.kind in (inspect.Parameter.VAR_POSITIONAL,
                      inspect.Parameter.VAR_KEYWORD) for p in params):
        return None
    names = [p.name for p in params]
    if names[:len(oracle)] != oracle:
        return (f"signature ({', '.join(names)}) does not lead with "
                f"the oracle parameters ({', '.join(oracle)})")
    for extra in params[len(oracle):]:
        if extra.default is inspect.Parameter.empty:
            return (f"extra parameter {extra.name!r} has no default; "
                    "the referee calls kernels with oracle arguments "
                    "only")
    return None


def check_backend(backend, base_cls=None) -> List[str]:
    """Human-readable contract defects for one backend instance."""
    if base_cls is None:
        from repro.metrics import RefereeBackend as base_cls
    defects: List[str] = []
    name = getattr(backend, "name", None)
    if not name or not isinstance(name, str):
        defects.append("backend has no usable .name")
    cls = type(backend)
    for kernel in KERNELS:
        method = getattr(cls, kernel, None)
        if method is None or not callable(method):
            defects.append(f"kernel {kernel!r} is missing")
            continue
        if kernel in STUB_KERNELS \
                and method is getattr(base_cls, kernel):
            defects.append(
                f"kernel {kernel!r} inherits the base-class stub "
                "(raises NotImplementedError at referee time)")
            continue
        mismatch = _signature_defect(base_cls, cls, kernel)
        if mismatch is not None:
            defects.append(f"kernel {kernel!r}: {mismatch}")
    return defects


def check_registry(repo: Path) -> List[Finding]:
    """REP004 findings over every backend registered right now."""
    fallback = "src/repro/metrics/backends.py"
    try:
        from repro.metrics import (RefereeBackend, available_backends,
                                   get_backend)
    except Exception as error:  # pragma: no cover - import environment
        return [Finding("REP004", fallback, 1, 0,
                        "cannot introspect the referee backend "
                        f"registry: {error!r}")]

    findings: List[Finding] = []
    for name in available_backends():
        backend = get_backend(name)
        defects = check_backend(backend, RefereeBackend)
        if not defects:
            continue
        path, line = fallback, 1
        try:
            source = inspect.getsourcefile(type(backend))
            if source:
                resolved = Path(source).resolve()
                path = resolved.relative_to(repo).as_posix() \
                    if resolved.is_relative_to(repo) else str(resolved)
            _, line = inspect.getsourcelines(type(backend))
        except (OSError, TypeError, ValueError):
            pass
        for defect in defects:
            findings.append(Finding(
                "REP004", path, line, 0,
                f"referee backend {name!r}: {defect}"))
    return findings


class Rep004BackendContract(Rule):
    """Every registered referee backend implements the full contract."""

    code = "REP004"
    title = "incomplete referee backend contract"
    project_rule = True

    def check_project(self, repo) -> List[Finding]:
        return check_registry(Path(repo))


register_rule(Rep004BackendContract())
