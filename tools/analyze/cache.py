"""Incremental analysis cache keyed by file content hashes.

One JSON file (default ``.cache/analyze_cache.json``) maps each
analyzed file to its per-file analysis products: pre-suppression local
findings, the serialized
:class:`~tools.analyze.effects.ModuleSummary`, and the statement spans
the suppression matcher needs.  Entries are keyed by ``(relpath,
content sha256, context)`` and the whole cache is salted with a digest
over ``tools/analyze/*.py`` itself, so editing any analyzer module
invalidates everything at once — a stale rule can never serve stale
findings.

The *interprocedural* phase (REP007-REP009) is recomputed from the
(possibly cached) summaries on every run: it is cheap relative to
parsing, and always re-deriving it keeps warm and cold runs
byte-identical in their findings.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional

CACHE_VERSION = 1
DEFAULT_CACHE = Path(".cache") / "analyze_cache.json"


def file_digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def tools_digest() -> str:
    """Digest over the analyzer's own sources (the invalidation salt)."""
    digest = hashlib.sha256()
    package = Path(__file__).resolve().parent
    for source in sorted(package.glob("*.py")):
        digest.update(source.name.encode("utf-8"))
        digest.update(source.read_bytes())
    return digest.hexdigest()


class AnalysisCache:
    """Load/lookup/store per-file analysis products."""

    def __init__(self, path: Path, salt: str):
        self.path = path
        self.salt = salt
        self.entries: Dict[str, Dict] = {}
        self.touched: set = set()

    @classmethod
    def load(cls, path: Path, salt: str) -> "AnalysisCache":
        cache = cls(path, salt)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return cache
        if data.get("version") != CACHE_VERSION \
                or data.get("tools_digest") != salt:
            return cache
        entries = data.get("entries")
        if isinstance(entries, dict):
            cache.entries = entries
        return cache

    def get(self, relpath: str, digest: str,
            context: str) -> Optional[Dict]:
        self.touched.add(relpath)
        entry = self.entries.get(relpath)
        if entry is None or entry.get("digest") != digest \
                or entry.get("context") != context:
            return None
        return entry

    def put(self, relpath: str, digest: str, context: str,
            record: Dict) -> None:
        self.touched.add(relpath)
        self.entries[relpath] = dict(record, digest=digest,
                                     context=context)

    def save(self) -> None:
        """Persist, pruning entries for files this run never saw."""
        entries = {relpath: entry
                   for relpath, entry in sorted(self.entries.items())
                   if relpath in self.touched}
        payload = {"version": CACHE_VERSION, "tools_digest": self.salt,
                   "entries": entries}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(payload) + "\n")
