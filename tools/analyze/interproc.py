"""Interprocedural rules REP007-REP012 over the call graph.

Each rule is a :class:`~tools.analyze.rules.Rule` with
``graph_rule = True``: the driver assembles every analyzed file's
:class:`~tools.analyze.effects.ModuleSummary` into one
:class:`~tools.analyze.callgraph.Program` and hands it to
:meth:`Rule.check_program` once per invocation.  Findings anchor to the
file/line where the offending construct lives, so the normal per-file
suppression and baseline machinery applies unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from tools.analyze.callgraph import (FunctionId, Program, fid,
                                     map_args_to_params)
from tools.analyze.contracts import KERNELS
from tools.analyze.dataflow import (chain_to_root,
                                    propagate_param_taint,
                                    propagate_seed_demands,
                                    reachable_from,
                                    resource_release_report)
from tools.analyze.rules import Finding, Rule, register_rule

_SELFISH = ("self", "cls")

#: Class-name suffix that marks a referee backend for REP008.
BACKEND_BASE = "RefereeBackend"


def _label(program: Program, function: FunctionId) -> str:
    """Human label: ``module.qualname`` (bare module for ``<module>``)."""
    module, summary = program.functions[function]
    if summary.qualname == "<module>":
        return module
    return f"{module}.{summary.qualname}"


def _chain_label(program: Program,
                 chain: List[FunctionId]) -> str:
    return " -> ".join(_label(program, f) for f in chain)


class Rep007SeedProvenance(Rule):
    """Every RNG construction must trace to an explicit seed."""

    code = "REP007"
    title = "RNG without explicit seed provenance"
    graph_rule = True

    def check_program(self, program: Program) -> List[Finding]:
        findings: List[Finding] = []
        for function in program.sorted_functions():
            summary = program.summary(function)
            relpath = program.relpath_of(function)
            for ctor, seed, line, col, context in summary.rng:
                if context == "default":
                    findings.append(Finding(
                        self.code, relpath, line, col,
                        f"{ctor} constructed in a default argument is "
                        f"evaluated once and shared across every call; "
                        f"construct it inside the function from an "
                        f"explicit seed"))
                    continue
                if context.startswith("global:"):
                    name = context.split(":", 1)[1]
                    findings.append(Finding(
                        self.code, relpath, line, col,
                        f"{ctor} stored in module global {name!r} is "
                        f"hidden process state; thread an explicitly "
                        f"seeded generator through parameters instead"))
                    continue
                if seed == "unseeded":
                    findings.append(Finding(
                        self.code, relpath, line, col,
                        f"{ctor}() constructed without a seed draws "
                        f"entropy from the OS; pass an explicit seed "
                        f"parameter or config field"))
                elif seed == "opaque":
                    findings.append(Finding(
                        self.code, relpath, line, col,
                        f"{ctor} seeded from a value with no seed "
                        f"provenance; derive the argument from an "
                        f"explicit seed parameter or config field"))
                # ``const``/``seedlike`` are fine; ``param:<name>``
                # defers to the interprocedural demand propagation.
        for violation in propagate_seed_demands(program):
            findings.append(Finding(
                self.code, program.relpath_of(violation.function),
                violation.line, violation.col,
                f"call feeds a non-seed value into parameter "
                f"{violation.param!r} of "
                f"{_label(program, violation.callee)}, which seeds "
                f"{violation.ctor} at {violation.ctor_site}"))
        return findings


def _backend_classes(program: Program) -> List[Tuple[str, str]]:
    """Every analyzed class whose base chain reaches RefereeBackend."""

    def is_backend(module: str, classname: str,
                   seen: Set[Tuple[str, str]]) -> bool:
        if classname == BACKEND_BASE:
            return True
        for base in program.modules[module].classes.get(classname, ()):
            if base.rsplit(".", 1)[-1] == BACKEND_BASE:
                return True
            resolved = program.find_class(base)
            if resolved is not None and resolved not in seen:
                seen.add(resolved)
                if is_backend(resolved[0], resolved[1], seen):
                    return True
        return False

    backends = []
    for name in sorted(program.modules):
        for classname in sorted(program.modules[name].classes):
            if is_backend(name, classname, {(name, classname)}):
                backends.append((name, classname))
    return backends


class Rep008KernelPurity(Rule):
    """Referee kernels must never mutate argument arrays."""

    code = "REP008"
    title = "referee kernel mutates argument arrays"
    graph_rule = True

    def check_program(self, program: Program) -> List[Finding]:
        findings: List[Finding] = []
        roots: List[Tuple[FunctionId, str, str]] = []
        seen_roots: Set[FunctionId] = set()
        for module, classname in _backend_classes(program):
            for kernel in KERNELS:
                root = program.resolve_method(module, classname, kernel)
                if root is None or root in seen_roots:
                    continue
                seen_roots.add(root)
                roots.append((root, classname, kernel))
        for root, classname, kernel in roots:
            params = [p for p in program.summary(root).params
                      if p not in _SELFISH]
            for hit in propagate_param_taint(program, root, params):
                where = ("" if len(hit.chain) == 1 else
                         f" [call chain: "
                         f"{_chain_label(program, hit.chain)}]")
                findings.append(Finding(
                    self.code, program.relpath_of(hit.function),
                    hit.line, hit.col,
                    f"kernel {classname}.{kernel} must not mutate "
                    f"argument arrays: {hit.param!r} (aliases kernel "
                    f"parameter {hit.root_param!r}) is mutated via "
                    f"{hit.detail}{where}"))
        return findings


def _submit_roots(program: Program) -> Tuple[
        List[Tuple[FunctionId, str]], List[Finding]]:
    """Resolve ``.submit`` payloads; unpicklable ones are findings."""
    roots: List[Tuple[FunctionId, str]] = []
    findings: List[Finding] = []
    for function in program.sorted_functions():
        summary = program.summary(function)
        relpath = program.relpath_of(function)
        for kind, name, line, col in summary.submits:
            if kind == "lambda":
                findings.append(Finding(
                    "REP009", relpath, line, col,
                    f"lambda submitted to an executor from "
                    f"{_label(program, function)} is unpicklable "
                    f"under spawn; submit a module-level function"))
                continue
            if kind == "nested":
                findings.append(Finding(
                    "REP009", relpath, line, col,
                    f"nested function {name!r} submitted to an "
                    f"executor from {_label(program, function)} is "
                    f"unpicklable under spawn; hoist it to module "
                    f"level"))
                continue
            resolved: Optional[FunctionId]
            if kind == "name":
                resolved = program.resolve_callable_ref(
                    function, ("name", name))
            else:
                resolved = program.resolve_callable_ref(
                    function, ("dotted", name))
            if resolved is not None:
                roots.append((resolved, name))
    return roots, findings


class Rep009ProcessSafety(Rule):
    """Worker-reachable code must not write module-level state."""

    code = "REP009"
    title = "worker-reachable module state write"
    graph_rule = True

    def check_program(self, program: Program) -> List[Finding]:
        roots, findings = _submit_roots(program)
        parents = reachable_from(program, [r for r, _ in roots])
        payload_of = {}
        for root, payload in roots:
            payload_of.setdefault(root, payload)
        for function in program.sorted_functions():
            if function not in parents:
                continue
            summary = program.summary(function)
            relpath = program.relpath_of(function)
            chain = chain_to_root(parents, function)
            payload = payload_of.get(chain[0], "?")
            for name, line, col in summary.global_writes:
                via = ("" if len(chain) == 1 else
                       f" via {_chain_label(program, chain)}")
                findings.append(Finding(
                    self.code, relpath, line, col,
                    f"write to module-level state {name!r} is "
                    f"reachable from executor payload {payload!r}"
                    f"{via}; workers must not mutate module state"))
        findings.sort(key=lambda f: (f.path, f.line, f.col))
        return findings


def _resource_profiles(program: Program) -> Tuple[
        Set[FunctionId], Dict[FunctionId, str]]:
    """Ownership facts per function from the pinless base reports.

    ``pins_ret`` holds functions using the sanctioned pin-and-return
    attach idiom (park the handle in a process-lifetime registry,
    then return it); ``returns_res`` maps functions that hand an
    *unpinned* handle to their caller onto the resource kind.
    """
    pins_ret: Set[FunctionId] = set()
    returns_res: Dict[FunctionId, str] = {}
    for function in program.sorted_functions():
        summary = program.summary(function)
        report = resource_release_report(
            summary, module_scope=summary.qualname == "<module>")
        if report.pinned_returns:
            pins_ret.add(function)
        elif report.returned:
            returns_res[function] = sorted(report.returned.values())[0]
    return pins_ret, returns_res


def _class_member_fids(program: Program,
                       function: FunctionId) -> List[FunctionId]:
    """Every analyzed method of ``function``'s enclosing class."""
    module_name, summary = program.functions[function]
    if "." not in summary.qualname:
        return []
    classname = summary.qualname.split(".", 1)[0]
    module = program.modules[module_name]
    return [fid(module_name, qualname)
            for qualname in sorted(module.functions)
            if "." in qualname
            and qualname.split(".", 1)[0] == classname]


def _attr_bind_pinned(program: Program, function: FunctionId,
                      attr: str, pins_ret: Set[FunctionId]) -> bool:
    """Does any method of the class bind ``attr`` from a pinning
    attach helper (``self._shm = _attach(...)``)?"""
    for member in _class_member_fids(program, function):
        for callee, _bound, site in program.edges.get(member, ()):
            if site.bind == attr and callee in pins_ret:
                return True
    return False


def _class_releases(program: Program, module_name: str,
                    classname: str, base: Optional[str]) -> bool:
    """Does the class expose a method releasing ``base`` (or any
    ``self.``-held handle when ``base`` is None)?"""
    module = program.modules.get(module_name)
    if module is None:
        return False
    for qualname, fn in module.functions.items():
        if "." not in qualname \
                or qualname.split(".", 1)[0] != classname:
            continue
        for rel_base, _line in fn.releases:
            if base is None:
                if rel_base.startswith(("self.", "cls.")):
                    return True
            elif rel_base == base:
                return True
    return False


class Rep010SharedBufferLifetime(Rule):
    """Escaping shm/mmap views need a pinned (or traveling) handle."""

    code = "REP010"
    title = "escaping shared-buffer view without pinned handle"
    graph_rule = True

    def check_program(self, program: Program) -> List[Finding]:
        findings: List[Finding] = []
        pins_ret, _returns_res = _resource_profiles(program)
        for function in program.sorted_functions():
            summary = program.summary(function)
            for var, handle, line, col, _ro, escapes in summary.views:
                if not escapes:
                    continue
                findings.extend(self._check_view(
                    program, function, var, handle, line, col,
                    pins_ret))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.message))
        return findings

    def _check_view(self, program: Program, function: FunctionId,
                    var: str, handle: str, line: int, col: int,
                    pins_ret: Set[FunctionId]) -> List[Finding]:
        summary = program.summary(function)
        relpath = program.relpath_of(function)
        prefix = (f"ndarray view {var!r} over shared buffer "
                  f"{handle!r} escapes "
                  f"{_label(program, function)} ")
        if "." in handle:
            if _attr_bind_pinned(program, function, handle, pins_ret):
                return []
            return [Finding(
                self.code, relpath, line, col,
                prefix + f"but {handle!r} is never bound from a "
                f"pin-and-return attach helper; an unpinned "
                f"SharedMemory is garbage-collected and unmaps the "
                f"pages under every live view")]
        if handle in summary.params:
            return self._demand(program, function, handle, var,
                                pins_ret)
        return self._local_handle(program, function, var, handle,
                                  line, col, pins_ret, prefix)

    def _local_handle(self, program: Program, function: FunctionId,
                      var: str, handle: str, line: int, col: int,
                      pins_ret: Set[FunctionId],
                      prefix: str) -> List[Finding]:
        summary = program.summary(function)
        relpath = program.relpath_of(function)
        if any(pin[0] == handle for pin in summary.pins):
            return []
        for callee, _bound, site in program.edges.get(function, ()):
            if site.bind == handle and callee in pins_ret:
                return []
        src = next((bind[1] for bind in summary.binds
                    if bind[0] == handle and "." in bind[1]), None)
        if src is not None:
            if _attr_bind_pinned(program, function, src, pins_ret):
                return []
            return [Finding(
                self.code, relpath, line, col,
                prefix + f"but {src!r} (read into {handle!r}) is "
                f"never bound from a pin-and-return attach helper; "
                f"pin the attachment in a process-lifetime registry")]
        travels = any(handle in names and var in names
                      for names, _line in summary.returns)
        if travels:
            return []
        known = (any(res[1] == handle for res in summary.resources)
                 or any(site.bind == handle for _c, _b, site
                        in program.edges.get(function, ())))
        if known:
            return [Finding(
                self.code, relpath, line, col,
                prefix + f"while the owning handle {handle!r} is "
                f"neither pinned in a process-lifetime registry nor "
                f"returned alongside the view; an unpinned "
                f"SharedMemory is garbage-collected and unmaps the "
                f"pages under every live view")]
        return []

    def _demand(self, program: Program, root: FunctionId,
                param: str, view_var: str,
                pins_ret: Set[FunctionId]) -> List[Finding]:
        """Backward demand: every call site feeding the handle param
        must keep the handle alive past the returned views."""
        findings: List[Finding] = []
        seen: Set[Tuple[FunctionId, str]] = {(root, param)}
        worklist: List[Tuple[FunctionId, str]] = [(root, param)]
        while worklist:
            function, param = worklist.pop(0)
            callers = sorted(
                program.callers.get(function, ()),
                key=lambda entry: (program.relpath_of(entry[0]),
                                   entry[2].line, entry[2].col))
            for caller, bound, site in callers:
                mapping = map_args_to_params(
                    program.summary(function), bound, site)
                arg = mapping.get(param)
                base = getattr(arg, "base", None)
                if base is None:
                    continue       # expression argument: no verdict
                csum = program.summary(caller)
                crel = program.relpath_of(caller)

                def bad(detail: str) -> Finding:
                    return Finding(
                        self.code, crel, site.line, site.col,
                        f"shared-buffer views built by "
                        f"{_label(program, root)} over handle "
                        f"parameter {param!r} escape, and "
                        f"{_label(program, caller)} {detail}; an "
                        f"unpinned SharedMemory is garbage-collected "
                        f"and unmaps the pages under every live view")

                if "." in base:
                    if not _attr_bind_pinned(program, caller, base,
                                             pins_ret):
                        findings.append(bad(
                            f"feeds it {base!r}, which is never bound "
                            f"from a pin-and-return attach helper"))
                    continue
                if any(pin[0] == base for pin in csum.pins):
                    continue
                if any(s.bind == base and callee in pins_ret
                       for callee, _b, s
                       in program.edges.get(caller, ())):
                    continue
                src = next((bind[1] for bind in csum.binds
                            if bind[0] == base and "." in bind[1]),
                           None)
                if src is not None:
                    if not _attr_bind_pinned(program, caller, src,
                                             pins_ret):
                        findings.append(bad(
                            f"feeds it {src!r} (read into {base!r}), "
                            f"which is never bound from a "
                            f"pin-and-return attach helper"))
                    continue
                if base in csum.params:
                    if (caller, base) not in seen:
                        seen.add((caller, base))
                        worklist.append((caller, base))
                    continue
                if any(res[1] == base for res in csum.resources):
                    result = site.bind
                    travels = any(
                        base in names
                        and (result in names if result else False)
                        for names, _line in csum.returns)
                    if not travels:
                        findings.append(bad(
                            f"feeds it local handle {base!r}, which "
                            f"is neither pinned nor kept alongside "
                            f"the returned views"))
                    continue
                # Unknown provenance: under-approximate, no verdict.
        return findings


class Rep011ReadOnlySharedViews(Rule):
    """Escaping shared views stay read-only, and stay unmutated."""

    code = "REP011"
    title = "writable or mutated shared-buffer view"
    graph_rule = True

    def check_program(self, program: Program) -> List[Finding]:
        findings: List[Finding] = []
        # (a) Escaping views must be locked before they escape.
        for function in program.sorted_functions():
            summary = program.summary(function)
            relpath = program.relpath_of(function)
            for var, _h, line, col, readonly, escapes in summary.views:
                if escapes and not readonly:
                    findings.append(Finding(
                        self.code, relpath, line, col,
                        f"shared-buffer view {var!r} escapes "
                        f"{_label(program, function)} without "
                        f"flags.writeable = False; lock escaping shm "
                        f"views read-only before sharing them"))
        # (b) No service-reachable code may flip writeability back on.
        roots = [function for function in program.sorted_functions()
                 if program.functions[function][0].startswith(
                     "repro.service")]
        submit_roots, _ignored = _submit_roots(program)
        roots.extend(root for root, _payload in submit_roots)
        parents = reachable_from(program, roots)
        for function in program.sorted_functions():
            summary = program.summary(function)
            if not summary.flips or function not in parents:
                continue
            relpath = program.relpath_of(function)
            chain = chain_to_root(parents, function)
            via = ("" if len(chain) == 1 else
                   f" [reached via {_chain_label(program, chain)}]")
            for base, line, col in summary.flips:
                findings.append(Finding(
                    self.code, relpath, line, col,
                    f"writeability of shared view {base!r} is "
                    f"flipped back on in service-reachable code"
                    f"{via}; read-only shared views must stay "
                    f"read-only"))
        # (c) Nothing may mutate through a locked or escaping view.
        for function in program.sorted_functions():
            summary = program.summary(function)
            for var, _h, line, col, readonly, escapes in summary.views:
                if not (readonly or escapes):
                    continue
                for callee, bound, site in program.edges.get(
                        function, ()):
                    mapping = map_args_to_params(
                        program.summary(callee), bound, site)
                    tainted = [p for p, arg in sorted(mapping.items())
                               if getattr(arg, "base", None) == var]
                    if not tainted:
                        continue
                    for hit in propagate_param_taint(program, callee,
                                                     tainted):
                        where = ("" if len(hit.chain) == 1 else
                                 f" [call chain: "
                                 f"{_chain_label(program, hit.chain)}]")
                        findings.append(Finding(
                            self.code,
                            program.relpath_of(hit.function),
                            hit.line, hit.col,
                            f"shared read-only view {var!r} (built "
                            f"at {program.relpath_of(function)}:"
                            f"{line}) is mutated via {hit.detail}"
                            f"{where}"))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.message))
        deduped: List[Finding] = []
        for finding in findings:
            if not deduped or finding != deduped[-1]:
                deduped.append(finding)
        return deduped


class Rep012ResourceDiscipline(Rule):
    """Acquisitions release on all paths; patches restore; owners
    expose unlink."""

    code = "REP012"
    title = "resource acquire/release discipline"
    graph_rule = True

    def check_program(self, program: Program) -> List[Finding]:
        findings: List[Finding] = []
        pins_ret, returns_res = _resource_profiles(program)
        for function in program.sorted_functions():
            summary = program.summary(function)
            relpath = program.relpath_of(function)
            module_name = program.functions[function][0]
            proxy: Dict[Tuple[str, int], str] = {}
            for callee, _bound, site in program.edges.get(
                    function, ()):
                if site.bind and "." not in site.bind \
                        and callee in returns_res:
                    proxy[(site.bind, site.line)] = \
                        returns_res[callee]
            report = resource_release_report(
                summary, proxy=proxy,
                module_scope=summary.qualname == "<module>")
            for var, kind, line, col in report.leaks:
                findings.append(Finding(
                    self.code, relpath, line, col,
                    f"{kind} handle {var!r} acquired here is not "
                    f"released on every non-exception path; close it "
                    f"in a finally, manage it with a with block, or "
                    f"pin it in a process-lifetime registry"))
            for var, kind, line, col in report.attr_open:
                if not var.startswith(("self.", "cls.")) \
                        or "." not in summary.qualname:
                    continue
                classname = summary.qualname.split(".", 1)[0]
                if _class_releases(program, module_name, classname,
                                   var):
                    continue
                findings.append(Finding(
                    self.code, relpath, line, col,
                    f"{kind} handle stored on {var!r} but class "
                    f"{classname} exposes no method releasing it; "
                    f"add a close()/shutdown()/unlink() path"))
            for var, line in report.escapes:
                message = self._escape_verdict(program, function,
                                               var, line)
                if message is not None:
                    findings.append(Finding(
                        self.code, relpath, line, 0, message))
            for target, line, col, restored in summary.patches:
                if not restored:
                    findings.append(Finding(
                        self.code, relpath, line, col,
                        f"monkeypatched module attribute {target!r} "
                        f"is not restored in a finally; wrap the "
                        f"patch in try/finally and restore the "
                        f"original"))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.message))
        return findings

    def _escape_verdict(self, program: Program, function: FunctionId,
                        var: str, line: int) -> Optional[str]:
        """An open handle escaping into a class needs that class to
        expose a release; escapes to plain functions or unresolvable
        targets transfer ownership (audited at the receiver)."""
        for callee, bound, site in program.edges.get(function, ()):
            if site.line != line:
                continue
            args = list(site.args) + list(site.kwargs.values())
            if not any(getattr(arg, "base", None) == var
                       for arg in args):
                continue
            csum = program.summary(callee)
            if bound and csum.qualname.endswith(".__init__"):
                callee_module = program.functions[callee][0]
                classname = csum.qualname.split(".", 1)[0]
                if _class_releases(program, callee_module, classname,
                                   None):
                    return None
                return (f"open handle {var!r} escapes into "
                        f"{classname}(), which exposes no release "
                        f"method; give {classname} a "
                        f"close()/unlink() that callers can reach")
            return None
        return None


register_rule(Rep007SeedProvenance())
register_rule(Rep008KernelPurity())
register_rule(Rep009ProcessSafety())
register_rule(Rep010SharedBufferLifetime())
register_rule(Rep011ReadOnlySharedViews())
register_rule(Rep012ResourceDiscipline())
