"""Interprocedural rules REP007/REP008/REP009 over the call graph.

Each rule is a :class:`~tools.analyze.rules.Rule` with
``graph_rule = True``: the driver assembles every analyzed file's
:class:`~tools.analyze.effects.ModuleSummary` into one
:class:`~tools.analyze.callgraph.Program` and hands it to
:meth:`Rule.check_program` once per invocation.  Findings anchor to the
file/line where the offending construct lives, so the normal per-file
suppression and baseline machinery applies unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from tools.analyze.callgraph import FunctionId, Program
from tools.analyze.contracts import KERNELS
from tools.analyze.dataflow import (chain_to_root, propagate_param_taint,
                                    propagate_seed_demands,
                                    reachable_from)
from tools.analyze.rules import Finding, Rule, register_rule

_SELFISH = ("self", "cls")

#: Class-name suffix that marks a referee backend for REP008.
BACKEND_BASE = "RefereeBackend"


def _label(program: Program, function: FunctionId) -> str:
    """Human label: ``module.qualname`` (bare module for ``<module>``)."""
    module, summary = program.functions[function]
    if summary.qualname == "<module>":
        return module
    return f"{module}.{summary.qualname}"


def _chain_label(program: Program,
                 chain: List[FunctionId]) -> str:
    return " -> ".join(_label(program, f) for f in chain)


class Rep007SeedProvenance(Rule):
    """Every RNG construction must trace to an explicit seed."""

    code = "REP007"
    title = "RNG without explicit seed provenance"
    graph_rule = True

    def check_program(self, program: Program) -> List[Finding]:
        findings: List[Finding] = []
        for function in program.sorted_functions():
            summary = program.summary(function)
            relpath = program.relpath_of(function)
            for ctor, seed, line, col, context in summary.rng:
                if context == "default":
                    findings.append(Finding(
                        self.code, relpath, line, col,
                        f"{ctor} constructed in a default argument is "
                        f"evaluated once and shared across every call; "
                        f"construct it inside the function from an "
                        f"explicit seed"))
                    continue
                if context.startswith("global:"):
                    name = context.split(":", 1)[1]
                    findings.append(Finding(
                        self.code, relpath, line, col,
                        f"{ctor} stored in module global {name!r} is "
                        f"hidden process state; thread an explicitly "
                        f"seeded generator through parameters instead"))
                    continue
                if seed == "unseeded":
                    findings.append(Finding(
                        self.code, relpath, line, col,
                        f"{ctor}() constructed without a seed draws "
                        f"entropy from the OS; pass an explicit seed "
                        f"parameter or config field"))
                elif seed == "opaque":
                    findings.append(Finding(
                        self.code, relpath, line, col,
                        f"{ctor} seeded from a value with no seed "
                        f"provenance; derive the argument from an "
                        f"explicit seed parameter or config field"))
                # ``const``/``seedlike`` are fine; ``param:<name>``
                # defers to the interprocedural demand propagation.
        for violation in propagate_seed_demands(program):
            findings.append(Finding(
                self.code, program.relpath_of(violation.function),
                violation.line, violation.col,
                f"call feeds a non-seed value into parameter "
                f"{violation.param!r} of "
                f"{_label(program, violation.callee)}, which seeds "
                f"{violation.ctor} at {violation.ctor_site}"))
        return findings


def _backend_classes(program: Program) -> List[Tuple[str, str]]:
    """Every analyzed class whose base chain reaches RefereeBackend."""

    def is_backend(module: str, classname: str,
                   seen: Set[Tuple[str, str]]) -> bool:
        if classname == BACKEND_BASE:
            return True
        for base in program.modules[module].classes.get(classname, ()):
            if base.rsplit(".", 1)[-1] == BACKEND_BASE:
                return True
            resolved = program.find_class(base)
            if resolved is not None and resolved not in seen:
                seen.add(resolved)
                if is_backend(resolved[0], resolved[1], seen):
                    return True
        return False

    backends = []
    for name in sorted(program.modules):
        for classname in sorted(program.modules[name].classes):
            if is_backend(name, classname, {(name, classname)}):
                backends.append((name, classname))
    return backends


class Rep008KernelPurity(Rule):
    """Referee kernels must never mutate argument arrays."""

    code = "REP008"
    title = "referee kernel mutates argument arrays"
    graph_rule = True

    def check_program(self, program: Program) -> List[Finding]:
        findings: List[Finding] = []
        roots: List[Tuple[FunctionId, str, str]] = []
        seen_roots: Set[FunctionId] = set()
        for module, classname in _backend_classes(program):
            for kernel in KERNELS:
                root = program.resolve_method(module, classname, kernel)
                if root is None or root in seen_roots:
                    continue
                seen_roots.add(root)
                roots.append((root, classname, kernel))
        for root, classname, kernel in roots:
            params = [p for p in program.summary(root).params
                      if p not in _SELFISH]
            for hit in propagate_param_taint(program, root, params):
                where = ("" if len(hit.chain) == 1 else
                         f" [call chain: "
                         f"{_chain_label(program, hit.chain)}]")
                findings.append(Finding(
                    self.code, program.relpath_of(hit.function),
                    hit.line, hit.col,
                    f"kernel {classname}.{kernel} must not mutate "
                    f"argument arrays: {hit.param!r} (aliases kernel "
                    f"parameter {hit.root_param!r}) is mutated via "
                    f"{hit.detail}{where}"))
        return findings


def _submit_roots(program: Program) -> Tuple[
        List[Tuple[FunctionId, str]], List[Finding]]:
    """Resolve ``.submit`` payloads; unpicklable ones are findings."""
    roots: List[Tuple[FunctionId, str]] = []
    findings: List[Finding] = []
    for function in program.sorted_functions():
        summary = program.summary(function)
        relpath = program.relpath_of(function)
        for kind, name, line, col in summary.submits:
            if kind == "lambda":
                findings.append(Finding(
                    "REP009", relpath, line, col,
                    f"lambda submitted to an executor from "
                    f"{_label(program, function)} is unpicklable "
                    f"under spawn; submit a module-level function"))
                continue
            if kind == "nested":
                findings.append(Finding(
                    "REP009", relpath, line, col,
                    f"nested function {name!r} submitted to an "
                    f"executor from {_label(program, function)} is "
                    f"unpicklable under spawn; hoist it to module "
                    f"level"))
                continue
            resolved: Optional[FunctionId]
            if kind == "name":
                resolved = program.resolve_callable_ref(
                    function, ("name", name))
            else:
                resolved = program.resolve_callable_ref(
                    function, ("dotted", name))
            if resolved is not None:
                roots.append((resolved, name))
    return roots, findings


class Rep009ProcessSafety(Rule):
    """Worker-reachable code must not write module-level state."""

    code = "REP009"
    title = "worker-reachable module state write"
    graph_rule = True

    def check_program(self, program: Program) -> List[Finding]:
        roots, findings = _submit_roots(program)
        parents = reachable_from(program, [r for r, _ in roots])
        payload_of = {}
        for root, payload in roots:
            payload_of.setdefault(root, payload)
        for function in program.sorted_functions():
            if function not in parents:
                continue
            summary = program.summary(function)
            relpath = program.relpath_of(function)
            chain = chain_to_root(parents, function)
            payload = payload_of.get(chain[0], "?")
            for name, line, col in summary.global_writes:
                via = ("" if len(chain) == 1 else
                       f" via {_chain_label(program, chain)}")
                findings.append(Finding(
                    self.code, relpath, line, col,
                    f"write to module-level state {name!r} is "
                    f"reachable from executor payload {payload!r}"
                    f"{via}; workers must not mutate module state"))
        findings.sort(key=lambda f: (f.path, f.line, f.col))
        return findings


register_rule(Rep007SeedProvenance())
register_rule(Rep008KernelPurity())
register_rule(Rep009ProcessSafety())
