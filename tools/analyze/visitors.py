"""AST rules REP001/REP002/REP003/REP005/REP006.

Each rule is one :class:`~tools.analyze.rules.Rule` subclass walking a
parsed module.  They share small helpers for resolving imported names
to canonical dotted paths (``np.random.rand`` -> ``numpy.random.rand``)
so aliasing cannot dodge a check.  The rules are deliberately
syntactic: they prove the *absence of a pattern*, not full type
correctness, and every intentional exception carries an inline
``# repro: noqa[REPxxx]`` with a justification (see ``rules.py``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

from tools.analyze.rules import Finding, Rule, register_rule

#: Explicit-stream constructors exempt from REP001.
SAFE_RANDOM = {"Random", "SystemRandom"}
SAFE_NUMPY_RANDOM = {
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
}

#: Consumers whose result does not depend on element order.
ORDER_FREE_CONSUMERS = {"sorted", "len", "min", "max", "any", "all",
                        "bool", "set", "frozenset"}
#: Consumers that materialize / reduce in iteration order.
ORDERED_CONSUMERS = {"list", "tuple", "sum", "enumerate", "iter",
                     "next", "map", "filter", "zip", "reversed"}

#: Set-returning methods (only when the receiver is itself set-typed).
SET_METHODS = {"union", "intersection", "difference",
               "symmetric_difference", "copy"}

#: RunArtifacts bookkeeping fields designed for accumulation by flows.
MUTABLE_ARTIFACT_FIELDS = {"eval_counters", "stage_seconds"}
#: Conventional names bound to frozen artifact records.
ARTIFACT_NAMES = {"artifacts", "run_artifacts", "prepared",
                  "prepared_design"}
ARTIFACT_TYPES = {"RunArtifacts", "PreparedDesign"}
#: The sanctioned writers: the defining modules plus the pipeline,
#: whose stages are the documented owners of artifact fields.
ARTIFACT_WRITER_MODULES = {
    "src/repro/api/artifacts.py",
    "src/repro/api/prepared.py",
    "src/repro/api/pipeline.py",
}

MUTATING_METHODS = {"append", "extend", "add", "insert", "remove",
                    "discard", "pop", "popitem", "clear", "update",
                    "setdefault", "sort", "reverse"}


def _import_maps(tree: ast.Module):
    """(module_aliases, from_names): local name -> canonical dotted."""
    modules: Dict[str, str] = {}
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                modules[local] = (alias.name if alias.asname
                                  else alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                dotted = f"{node.module}.{alias.name}"
                # ``from numpy import random`` binds a module.
                names[local] = dotted
    return modules, names


def _canonical_call(func: ast.AST, modules: Dict[str, str],
                    names: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of a call target, if resolvable."""
    if isinstance(func, ast.Name):
        return names.get(func.id)
    if isinstance(func, ast.Attribute):
        parts = [func.attr]
        node = func.value
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = modules.get(node.id) or names.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))
    return None


class Rep001GlobalRng(Rule):
    """Unseeded / process-global RNG use."""

    code = "REP001"
    title = "unseeded or global RNG"

    def check(self, tree, relpath, lines):
        modules, names = _import_maps(tree)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _canonical_call(node.func, modules, names)
            if dotted is None:
                continue
            parts = dotted.split(".")
            bad = None
            if parts[0] == "random" and len(parts) == 2 \
                    and parts[1] not in SAFE_RANDOM:
                bad = dotted
            elif parts[:2] == ["numpy", "random"] and len(parts) == 3 \
                    and parts[2] not in SAFE_NUMPY_RANDOM:
                bad = dotted
            if bad is not None:
                findings.append(Finding(
                    self.code, relpath, node.lineno, node.col_offset,
                    f"{bad}() draws from process-global RNG state; "
                    "route all randomness through an explicitly seeded "
                    "random.Random / numpy Generator"))
        return findings


class _SetScope:
    """Nearest-binding view of which names are set-typed."""

    def __init__(self, parent: Optional["_SetScope"] = None):
        self.parent = parent
        self.bindings: Dict[str, bool] = {}

    def bind(self, name: str, is_set: bool) -> None:
        self.bindings[name] = is_set

    def __contains__(self, name: str) -> bool:
        scope = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return False


def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value.split("[")[0].strip()
    else:
        return False
    return name in {"set", "Set", "FrozenSet", "frozenset",
                    "AbstractSet", "MutableSet"}


def _is_dict_view(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in {"keys", "items"}
            and not node.args and not node.keywords)


class Rep002SetIteration(Rule):
    """Iteration over unordered sets / dict-view algebra."""

    code = "REP002"
    title = "unordered set iteration"
    paths = ("src/repro/metrics", "src/repro/slicing",
             "src/repro/shapecurve", "src/repro/floorplan",
             "src/repro/core", "src/repro/service")

    def _is_set_expr(self, node: ast.AST, scope: _SetScope) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in scope
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Sub, ast.BitAnd, ast.BitOr, ast.BitXor)):
            return any(self._is_set_expr(side, scope)
                       or _is_dict_view(side)
                       for side in (node.left, node.right))
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) \
                    and func.id in {"set", "frozenset"}:
                return True
            if isinstance(func, ast.Attribute) \
                    and func.attr in SET_METHODS:
                return self._is_set_expr(func.value, scope)
        return False

    def check(self, tree, relpath, lines):
        findings: List[Finding] = []

        def flag(node: ast.AST, what: str) -> None:
            findings.append(Finding(
                self.code, relpath, node.lineno, node.col_offset,
                f"{what} iterates an unordered set; wrap it in "
                "sorted(...) or iterate a deterministic sequence"))

        def walk(body: Sequence[ast.stmt], scope: _SetScope) -> None:
            for stmt in body:
                visit(stmt, scope)

        def visit(node: ast.AST, scope: _SetScope) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = _SetScope(scope)
                args = node.args
                for arg in (args.posonlyargs + args.args
                            + args.kwonlyargs):
                    if _annotation_is_set(arg.annotation):
                        inner.bind(arg.arg, True)
                walk(node.body, inner)
                return
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                set_typed = (value is not None
                             and self._is_set_expr(value, scope))
                if isinstance(node, ast.AnnAssign) \
                        and _annotation_is_set(node.annotation):
                    set_typed = True
                if value is not None:
                    check_expr(value, scope)
                # Rebinding after the check: ``xs = sorted(xs)`` both
                # consumes the old set and clears the set-typed mark.
                for target in targets:
                    if isinstance(target, ast.Name):
                        scope.bind(target.id, set_typed)
                return
            if isinstance(node, ast.AugAssign):
                check_expr(node.value, scope)
                return
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter, scope):
                    flag(node, "for loop")
                check_expr(node.iter, scope)
                walk(node.body, scope)
                walk(node.orelse, scope)
                return
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    check_expr(child, scope)
                else:
                    visit(child, scope)

        def check_expr(node: ast.AST, scope: _SetScope) -> None:
            # A comprehension fed straight into an order-insensitive
            # consumer (``sorted(f(x) for x in s)``) is explicitly
            # ordered/order-free and must not be flagged.
            order_free = set()
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call) \
                        and isinstance(sub.func, ast.Name) \
                        and sub.func.id in ORDER_FREE_CONSUMERS:
                    for arg in sub.args:
                        if isinstance(arg, (ast.ListComp,
                                            ast.GeneratorExp,
                                            ast.SetComp)):
                            order_free.add(id(arg))
            for sub in ast.walk(node):
                if isinstance(sub, (ast.ListComp, ast.GeneratorExp,
                                    ast.DictComp)):
                    if id(sub) in order_free:
                        continue
                    for gen in sub.generators:
                        if self._is_set_expr(gen.iter, scope):
                            flag(gen.iter, "comprehension")
                elif isinstance(sub, ast.Call):
                    func = sub.func
                    name = None
                    if isinstance(func, ast.Name):
                        name = func.id
                    elif isinstance(func, ast.Attribute) \
                            and func.attr == "join":
                        name = "join"
                    if name in ORDERED_CONSUMERS or name == "join":
                        for arg in sub.args:
                            if self._is_set_expr(arg, scope):
                                flag(sub, f"{name}(...)")

        walk(tree.body, _SetScope())
        return findings


class Rep003UnorderedReduction(Rule):
    """``sum``/``np.sum``/``.sum()`` in bit-identity kernel code."""

    code = "REP003"
    title = "unordered float reduction in a metrics kernel"
    paths = ("src/repro/metrics",)

    def check(self, tree, relpath, lines):
        modules, names = _import_maps(tree)
        exempt = set()
        for node in ast.walk(tree):
            # ``int(x.sum())`` is a count: exact in any order.
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "int" and len(node.args) == 1 \
                    and isinstance(node.args[0], ast.Call):
                exempt.add(id(node.args[0]))
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or id(node) in exempt:
                continue
            func = node.func
            flagged = None
            if isinstance(func, ast.Name) and func.id == "sum":
                flagged = "sum()"
            elif isinstance(func, ast.Attribute) and func.attr == "sum":
                dotted = _canonical_call(func, modules, names)
                flagged = (f"{dotted}()" if dotted == "numpy.sum"
                           else ".sum()")
            if flagged is not None:
                findings.append(Finding(
                    self.code, relpath, node.lineno, node.col_offset,
                    f"{flagged} reduction in a metrics kernel: the "
                    "backend bit-identity contract requires sequential "
                    "cumsum / ordered np.add.at (wrap exact integer "
                    "counts in int(...))"))
        return findings


class Rep005FrozenArtifactMutation(Rule):
    """Mutation of RunArtifacts / PreparedDesign outside their owners."""

    code = "REP005"
    title = "mutation of a frozen artifact record"

    def _artifact_names(self, tree: ast.Module) -> Set[str]:
        found = set(ARTIFACT_NAMES)
        for node in ast.walk(tree):
            if isinstance(node, ast.arg) \
                    and self._is_artifact_annotation(node.annotation):
                found.add(node.arg)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name) \
                    and self._is_artifact_annotation(node.annotation):
                found.add(node.target.id)
            elif isinstance(node, ast.Assign) \
                    and self._is_artifact_ctor(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        found.add(target.id)
        return found

    @staticmethod
    def _is_artifact_annotation(annotation: Optional[ast.AST]) -> bool:
        if annotation is None:
            return False
        if isinstance(annotation, ast.Constant) \
                and isinstance(annotation.value, str):
            name = annotation.value.split("[")[0].strip()
            return name.split(".")[-1] in ARTIFACT_TYPES
        node = annotation
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            return node.attr in ARTIFACT_TYPES
        if isinstance(node, ast.Name):
            return node.id in ARTIFACT_TYPES
        return False

    @staticmethod
    def _is_artifact_ctor(value: Optional[ast.AST]) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Attribute):
            # ``PreparedDesign.from_flat(...)`` and friends.
            if isinstance(func.value, ast.Name) \
                    and func.value.id in ARTIFACT_TYPES:
                return True
        return isinstance(func, ast.Name) and func.id in ARTIFACT_TYPES

    def _artifact_base(self, node: ast.AST,
                       artifact_names: Set[str]) -> bool:
        """Is ``node`` a reference to an artifact record?"""
        if isinstance(node, ast.Name):
            return node.id in artifact_names
        if isinstance(node, ast.Attribute):
            # ``self.artifacts`` and similar attribute-held records.
            return node.attr in artifact_names
        return False

    def check(self, tree, relpath, lines):
        if relpath in ARTIFACT_WRITER_MODULES:
            return []
        artifact_names = self._artifact_names(tree)
        findings: List[Finding] = []

        def flag(node: ast.AST, detail: str) -> None:
            findings.append(Finding(
                self.code, relpath, node.lineno, node.col_offset,
                f"{detail} mutates a frozen artifact record outside "
                "its owning module (RunArtifacts/PreparedDesign fields "
                "are read-only views once the pipeline fills them)"))

        def field_write_target(target: ast.AST):
            """(base, field) when target writes ``artifact.field``."""
            node = target
            if isinstance(node, ast.Subscript):
                node = node.value
            if isinstance(node, ast.Attribute) \
                    and self._artifact_base(node.value, artifact_names):
                return node.value, node.attr
            return None

        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    hit = field_write_target(target)
                    if hit is None:
                        continue
                    _base, fieldname = hit
                    subscripted = isinstance(target, ast.Subscript)
                    if subscripted \
                            and fieldname in MUTABLE_ARTIFACT_FIELDS:
                        continue
                    flag(node, f"assignment to .{fieldname}")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if field_write_target(target) is not None:
                        flag(node, "del of an artifact field")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in MUTATING_METHODS:
                owner = node.func.value
                if isinstance(owner, ast.Attribute) \
                        and self._artifact_base(owner.value,
                                                artifact_names):
                    if owner.attr in MUTABLE_ARTIFACT_FIELDS:
                        continue
                    flag(node,
                         f".{owner.attr}.{node.func.attr}(...)")
        return findings


class Rep006WallClockRead(Rule):
    """Wall-clock or environment reads inside kernel/cost-model code.

    Scope note: ``src/repro/obs`` is in scope *on purpose* — its
    ``clock.py`` is the single sanctioned clock module (two suppressed
    reads with justifications), so any other ``time.*`` call added to
    the observability layer, or to kernel code, is flagged.  Kernel
    and instrumentation code must call
    ``repro.obs.clock.perf_seconds``/``wall_seconds`` instead of
    reading ``time`` directly; ``tests/test_analyze.py`` additionally
    asserts, from the effect summaries, that ``obs/clock.py`` is the
    only clock reader in ``src/``.
    """

    code = "REP006"
    title = "wall-clock or environment read in kernel code"
    paths = ("src/repro/metrics", "src/repro/eval",
             "src/repro/floorplan", "src/repro/shapecurve",
             "src/repro/slicing", "src/repro/timing",
             "src/repro/placement", "src/repro/routing",
             "src/repro/obs")

    _BAD_CALL_PREFIXES = ("time.",)
    _BAD_CALLS = {"os.getenv", "datetime.datetime.now",
                  "datetime.datetime.utcnow", "datetime.date.today",
                  "datetime.now", "date.today"}

    def check(self, tree, relpath, lines):
        modules, names = _import_maps(tree)
        findings: List[Finding] = []

        def flag(node: ast.AST, what: str) -> None:
            findings.append(Finding(
                self.code, relpath, node.lineno, node.col_offset,
                f"{what} read in kernel/cost-model code: results must "
                "be a pure function of inputs + seed (keep wall-clock "
                "to observability counters and suppress with a "
                "justification)"))

        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                dotted = _canonical_call(node.func, modules, names)
                if dotted is None:
                    continue
                if dotted in self._BAD_CALLS or any(
                        dotted.startswith(prefix)
                        for prefix in self._BAD_CALL_PREFIXES):
                    flag(node, f"{dotted}()")
            elif isinstance(node, ast.Attribute) \
                    and node.attr == "environ" \
                    and isinstance(node.value, ast.Name) \
                    and (modules.get(node.value.id) == "os"
                         or node.value.id == "os"):
                flag(node, "os.environ")
        return findings


register_rule(Rep001GlobalRng())
register_rule(Rep002SetIteration())
register_rule(Rep003UnorderedReduction())
register_rule(Rep005FrozenArtifactMutation())
register_rule(Rep006WallClockRead())
