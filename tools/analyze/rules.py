"""Finding/rule model, the rule registry and inline suppressions.

Every check the analyzer runs is a :class:`Rule` registered in
:data:`RULES`.  AST rules implement :meth:`Rule.check` over one parsed
file; project rules (``REP004``) implement :meth:`Rule.check_project`
and run once per invocation.  A rule owns its *scope*: the
repo-relative path prefixes where its contract is load-bearing.  The
driver consults the scope in ``context="auto"`` mode and ignores it in
``context="all"`` mode (used by the self-tests so fixture files outside
``src/`` still trigger scoped rules).

Suppressions are inline comments of the form::

    risky_line()  # repro: noqa[REPxxx] seeded upstream by the caller

The bracket lists one or more comma-separated rule codes; everything
after the bracket is the (expected) one-line justification.  A bare
``# repro: noqa`` without codes is intentionally *not* honoured — every
suppression names the contract it waives.  Suppressions that match no
finding are reported as warnings so stale waivers cannot accumulate.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: ``# repro: noqa[REPxxx]`` / ``# repro: noqa[REPxxx,REPyyy] why``.
NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]+)\]")
#: Only real rule codes count; doc examples spell ``REPxxx``.
CODE_RE = re.compile(r"REP\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, anchored to a repo-relative location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


class Rule:
    """Base class for one analyzer rule.

    ``paths`` lists the repo-relative prefixes the rule polices; an
    empty tuple means every analyzed file.  ``code``/``title`` identify
    the rule in reports and suppressions.
    """

    code = "REP000"
    title = "base rule"
    #: Repo-relative path prefixes (POSIX) the rule applies to.
    paths: Tuple[str, ...] = ()
    #: Project rules run once per invocation, not per file.
    project_rule = False
    #: Graph rules run once over the assembled call-graph
    #: :class:`~tools.analyze.callgraph.Program` (REP007-REP009).
    graph_rule = False

    def applies(self, relpath: str) -> bool:
        if not self.paths:
            return True
        return any(relpath == prefix or relpath.startswith(prefix + "/")
                   for prefix in self.paths)

    def check(self, tree, relpath: str,
              lines: Sequence[str]) -> List[Finding]:
        """AST rules: findings for one parsed file."""
        return []

    def check_project(self, repo) -> List[Finding]:
        """Project rules: findings for the whole invocation."""
        return []

    def check_program(self, program) -> List[Finding]:
        """Graph rules: findings over the whole call graph."""
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.code}: {self.title}>"


#: The registry, in rule-code order.
RULES: Dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Register ``rule`` under ``rule.code`` (one instance per code)."""
    if rule.code in RULES:
        raise ValueError(f"analyzer rule {rule.code!r} already registered")
    RULES[rule.code] = rule
    return rule


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, sorted by code."""
    return tuple(RULES[code] for code in sorted(RULES))


def statement_spans(tree: ast.AST) -> List[Tuple[int, int]]:
    """``(lineno, end_lineno)`` of every statement, header-only for
    compound statements.

    A ``# repro: noqa[...]`` anywhere on the physical lines of the
    flagged *statement* suppresses it — so the closing paren of a
    multi-line call is a valid anchor — but a compound statement
    (``if``/``for``/``with``/``def``) only spans its header, never its
    body, so a noqa cannot blanket a whole block.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        end = getattr(node, "end_lineno", None) or start
        body = getattr(node, "body", None)
        if body and isinstance(body[0], ast.stmt):
            end = max(start, body[0].lineno - 1)
        spans.append((start, end))
    return sorted(set(spans))


@dataclass
class SuppressionTable:
    """Per-file map of noqa comments, matched by statement span.

    ``codes_by_line`` records where each ``# repro: noqa[...]`` comment
    physically sits; ``spans`` (from :func:`statement_spans`) lets a
    finding match a noqa on *any* line of its enclosing statement, so
    multi-line calls can carry the suppression on whichever physical
    line survives formatting.
    """

    codes_by_line: Dict[int, List[str]] = field(default_factory=dict)
    used: Dict[Tuple[int, str], bool] = field(default_factory=dict)
    spans: List[Tuple[int, int]] = field(default_factory=list)

    @classmethod
    def parse(cls, lines: Sequence[str],
              tree: Optional[ast.AST] = None) -> "SuppressionTable":
        table = cls()
        for number, text in enumerate(lines, start=1):
            if "#" not in text:
                continue
            for match in NOQA_RE.finditer(text):
                codes = [code.strip().upper()
                         for code in match.group(1).split(",")
                         if CODE_RE.fullmatch(code.strip().upper())]
                table.codes_by_line.setdefault(number, []).extend(codes)
                for code in codes:
                    table.used.setdefault((number, code), False)
        if tree is not None:
            table.spans = statement_spans(tree)
        return table

    def _span_of(self, line: int) -> Tuple[int, int]:
        """Smallest statement span containing ``line`` (else the line)."""
        best = (line, line)
        best_size = None
        for start, end in self.spans:
            if start <= line <= end:
                size = end - start
                if best_size is None or size < best_size:
                    best, best_size = (start, end), size
        return best

    def suppresses(self, finding: Finding) -> bool:
        start, end = self._span_of(finding.line)
        hit = False
        for number in range(start, end + 1):
            if finding.rule in self.codes_by_line.get(number, ()):
                self.used[(number, finding.rule)] = True
                hit = True
        return hit

    def unused(self) -> List[Tuple[int, str]]:
        return sorted(key for key, hit in self.used.items() if not hit)
