"""Finding/rule model, the rule registry and inline suppressions.

Every check the analyzer runs is a :class:`Rule` registered in
:data:`RULES`.  AST rules implement :meth:`Rule.check` over one parsed
file; project rules (``REP004``) implement :meth:`Rule.check_project`
and run once per invocation.  A rule owns its *scope*: the
repo-relative path prefixes where its contract is load-bearing.  The
driver consults the scope in ``context="auto"`` mode and ignores it in
``context="all"`` mode (used by the self-tests so fixture files outside
``src/`` still trigger scoped rules).

Suppressions are inline comments of the form::

    risky_line()  # repro: noqa[REP001] seeded upstream by the caller

The bracket lists one or more comma-separated rule codes; everything
after the bracket is the (expected) one-line justification.  A bare
``# repro: noqa`` without codes is intentionally *not* honoured — every
suppression names the contract it waives.  Suppressions that match no
finding are reported as warnings so stale waivers cannot accumulate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: ``# repro: noqa[REP001]`` / ``# repro: noqa[REP001,REP005] why``.
NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, anchored to a repo-relative location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


class Rule:
    """Base class for one analyzer rule.

    ``paths`` lists the repo-relative prefixes the rule polices; an
    empty tuple means every analyzed file.  ``code``/``title`` identify
    the rule in reports and suppressions.
    """

    code = "REP000"
    title = "base rule"
    #: Repo-relative path prefixes (POSIX) the rule applies to.
    paths: Tuple[str, ...] = ()
    #: Project rules run once per invocation, not per file.
    project_rule = False

    def applies(self, relpath: str) -> bool:
        if not self.paths:
            return True
        return any(relpath == prefix or relpath.startswith(prefix + "/")
                   for prefix in self.paths)

    def check(self, tree, relpath: str,
              lines: Sequence[str]) -> List[Finding]:
        """AST rules: findings for one parsed file."""
        return []

    def check_project(self, repo) -> List[Finding]:
        """Project rules: findings for the whole invocation."""
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.code}: {self.title}>"


#: The registry, in rule-code order.
RULES: Dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Register ``rule`` under ``rule.code`` (one instance per code)."""
    if rule.code in RULES:
        raise ValueError(f"analyzer rule {rule.code!r} already registered")
    RULES[rule.code] = rule
    return rule


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, sorted by code."""
    return tuple(RULES[code] for code in sorted(RULES))


@dataclass
class SuppressionTable:
    """Per-file map of line number -> suppressed rule codes."""

    codes_by_line: Dict[int, List[str]] = field(default_factory=dict)
    used: Dict[Tuple[int, str], bool] = field(default_factory=dict)

    @classmethod
    def parse(cls, lines: Sequence[str]) -> "SuppressionTable":
        table = cls()
        for number, text in enumerate(lines, start=1):
            if "#" not in text:
                continue
            for match in NOQA_RE.finditer(text):
                codes = [code.strip().upper()
                         for code in match.group(1).split(",")
                         if code.strip()]
                table.codes_by_line.setdefault(number, []).extend(codes)
                for code in codes:
                    table.used.setdefault((number, code), False)
        return table

    def suppresses(self, finding: Finding) -> bool:
        codes = self.codes_by_line.get(finding.line, ())
        if finding.rule in codes:
            self.used[(finding.line, finding.rule)] = True
            return True
        return False

    def unused(self) -> List[Tuple[int, str]]:
        return sorted(key for key, hit in self.used.items() if not hit)
