"""Alias-resolved module-import + intra-project call graph.

:class:`Program` assembles the :class:`~tools.analyze.effects.\
ModuleSummary` of every analyzed file into one whole-program view and
resolves each recorded call site to the function it targets:

* plain names resolve through the defining module, then its
  ``from``-import map (chasing re-exports through package
  ``__init__`` modules);
* dotted calls (``mod.func``, ``pkg.mod.Class.method``) resolve by
  longest-module-prefix match over the analyzed set, so
  ``import numpy as np`` style aliasing cannot hide an edge;
* ``self.method`` / ``cls.method`` resolve through the enclosing class
  and its program-local base classes (an MRO-lite depth-first walk),
  which is what lets a backend kernel inherited from
  ``RefereeBackend`` keep its call edges.

Unresolvable targets (third-party code, dynamically dispatched
callables) simply contribute no edge — the engine under-approximates
reachability rather than guessing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from tools.analyze.effects import CallSite, FunctionSummary, \
    ModuleSummary

#: Function identifier: ``<module>:<qualname>``.
FunctionId = str


def fid(module: str, qualname: str) -> FunctionId:
    return f"{module}:{qualname}"


class Program:
    """Whole-program view over every analyzed module summary."""

    def __init__(self, summaries: Iterable[ModuleSummary]):
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            if summary is not None:
                self.modules[summary.module] = summary
        #: fid -> (module name, FunctionSummary)
        self.functions: Dict[FunctionId,
                             Tuple[str, FunctionSummary]] = {}
        for name, module in self.modules.items():
            for qualname, fn in module.functions.items():
                self.functions[fid(name, qualname)] = (name, fn)
        #: fid -> [(callee fid, bound, CallSite)]
        self.edges: Dict[FunctionId,
                         List[Tuple[FunctionId, bool, CallSite]]] = {}
        #: callee fid -> [(caller fid, bound, CallSite)]
        self.callers: Dict[FunctionId,
                           List[Tuple[FunctionId, bool,
                                      CallSite]]] = {}
        self._link()

    # -- lookup helpers -----------------------------------------------------

    def summary(self, function: FunctionId) -> FunctionSummary:
        return self.functions[function][1]

    def module_of(self, function: FunctionId) -> ModuleSummary:
        return self.modules[self.functions[function][0]]

    def relpath_of(self, function: FunctionId) -> str:
        return self.module_of(function).relpath

    def sorted_functions(self) -> List[FunctionId]:
        """Deterministic iteration order: path, then definition order."""
        return sorted(self.functions,
                      key=lambda f: (self.relpath_of(f),
                                     self.summary(f).line, f))

    # -- class resolution ---------------------------------------------------

    def find_class(self, dotted: str) -> Optional[Tuple[str, str]]:
        """``(module, classname)`` for a dotted or bare class name."""
        for name, module in self.modules.items():
            if dotted.startswith(name + "."):
                rest = dotted[len(name) + 1:]
                if rest in module.classes:
                    return name, rest
        # Bare names: unique suffix match over all analyzed classes.
        bare = dotted.rsplit(".", 1)[-1]
        hits = [(name, bare) for name, module in
                sorted(self.modules.items())
                if bare in module.classes]
        return hits[0] if hits else None

    def mro(self, module: str, classname: str,
            _seen=None) -> List[Tuple[str, str]]:
        """Depth-first (module, class) linearization, program-local."""
        _seen = _seen if _seen is not None else set()
        if (module, classname) in _seen:
            return []
        _seen.add((module, classname))
        order = [(module, classname)]
        for base in self.modules[module].classes.get(classname, ()):
            resolved = self.find_class(base) if base else None
            if resolved is not None:
                order.extend(self.mro(resolved[0], resolved[1], _seen))
        return order

    def resolve_method(self, module: str, classname: str,
                       attr: str) -> Optional[FunctionId]:
        """The defining ``fid`` of ``classname.attr``, MRO-resolved."""
        for mod, cls in self.mro(module, classname):
            candidate = fid(mod, f"{cls}.{attr}")
            if candidate in self.functions:
                return candidate
        return None

    # -- call-site resolution -----------------------------------------------

    def resolve_dotted(self, dotted: str,
                       depth: int = 0) -> Optional[Tuple[FunctionId,
                                                         bool]]:
        """``(fid, bound)`` for a canonical dotted call target."""
        if depth > 4:
            return None
        best = None
        for name in self.modules:
            if dotted == name or dotted.startswith(name + "."):
                if best is None or len(name) > len(best):
                    best = name
        if best is None:
            return None
        rest = dotted[len(best) + 1:] if dotted != best else ""
        module = self.modules[best]
        if not rest:
            return None
        if rest in module.functions:
            # ``Class.method(explicit_self, ...)`` aligns 1:1 with
            # params; a bare class name is a constructor call.
            return fid(best, rest), False
        if rest in module.classes:
            ctor = self.resolve_method(best, rest, "__init__")
            return (ctor, True) if ctor is not None else None
        head = rest.split(".", 1)[0]
        if "." in rest and head in module.classes:
            method = self.resolve_method(best, head,
                                         rest.split(".", 1)[1])
            if method is not None:
                return method, False
        # Re-export: chase the module's own from-import binding.
        if head in module.names_map:
            tail = rest.split(".", 1)[1] if "." in rest else ""
            chased = module.names_map[head] + ("." + tail
                                               if tail else "")
            return self.resolve_dotted(chased, depth + 1)
        return None

    def resolve_call(self, caller: FunctionId,
                     site: CallSite) -> Optional[Tuple[FunctionId,
                                                       bool]]:
        module_name, fn = self.functions[caller]
        module = self.modules[module_name]
        kind = site.target[0]
        if kind == "name":
            name = site.target[1]
            if fid(module_name, name) in self.functions:
                return fid(module_name, name), False
            if name in module.classes:
                ctor = self.resolve_method(module_name, name,
                                           "__init__")
                return (ctor, True) if ctor is not None else None
            if name in module.names_map:
                return self.resolve_dotted(module.names_map[name])
            return None
        if kind == "dotted":
            return self.resolve_dotted(site.target[1])
        if kind == "method":
            base, attr = site.target[1], site.target[2]
            if base in _SELFISH and "." in fn.qualname:
                classname = fn.qualname.split(".", 1)[0]
                method = self.resolve_method(module_name, classname,
                                             attr)
                if method is not None:
                    return method, True
            return None
        return None

    def resolve_callable_ref(self, caller: FunctionId,
                             ref: Tuple[str, str]
                             ) -> Optional[FunctionId]:
        """Resolve a callable *value* (e.g. a ``.submit`` payload)."""
        resolved = self.resolve_call(
            caller, CallSite(target=(ref[0], ref[1])))
        return resolved[0] if resolved is not None else None

    def _link(self) -> None:
        for function in self.functions:
            edges = []
            for site in self.summary(function).calls:
                resolved = self.resolve_call(function, site)
                if resolved is None:
                    continue
                callee, bound = resolved
                edges.append((callee, bound, site))
                self.callers.setdefault(callee, []).append(
                    (function, bound, site))
            self.edges[function] = edges


_SELFISH = ("self", "cls")


def map_args_to_params(callee: FunctionSummary, bound: bool,
                       site: CallSite) -> Dict[str, "object"]:
    """param name -> :class:`~tools.analyze.effects.ArgInfo`.

    ``bound`` calls (receiver dispatch, constructors) feed positional
    arguments into ``params[1:]`` and map the receiver alias onto
    ``self``; unbound calls align 1:1.
    """
    from tools.analyze.effects import ArgInfo

    params = list(callee.params)
    mapping: Dict[str, object] = {}
    if bound and params and params[0] in _SELFISH:
        mapping[params[0]] = ArgInfo(alias=site.recv_alias)
        positional = params[1:]
    else:
        positional = params
    for index, arg in enumerate(site.args):
        if index < len(positional):
            mapping[positional[index]] = arg
    for key, arg in site.kwargs.items():
        if key in params:
            mapping[key] = arg
    return mapping
