"""repro-analyze: determinism & backend-contract static analysis.

The repo's load-bearing guarantees — bit-identical referee backends,
seed-deterministic flows and restarts, read-only ``RunArtifacts`` /
``PreparedDesign`` views — are enforced at runtime by the equivalence
suites.  This package proves the same contracts at *lint time*, before
any kernel runs, with an AST-based analyzer and a registry
introspection pass:

* **REP001** unseeded / process-global RNG (``random.*`` module
  functions, ``np.random.*`` global state);
* **REP002** iteration over unordered sets (and dict-view algebra) in
  cost/kernel packages without an explicit ordering;
* **REP003** unordered float reductions (``sum``/``np.sum``) in
  ``repro.metrics`` kernels, where the backend bit-identity contract
  requires sequential ``cumsum`` / ordered ``np.add.at``;
* **REP004** backend-contract completeness: every backend registered in
  :mod:`repro.metrics` implements all five referee kernels with
  oracle-matching signatures;
* **REP005** mutation of frozen artifact records outside their owning
  modules;
* **REP006** wall-clock / environment reads inside kernel and
  cost-model code;
* **REP007** RNG constructions without data-flow seed provenance
  (interprocedural: demands propagate caller-to-caller);
* **REP008** referee kernels (or their transitive callees) mutating
  argument arrays — the bit-identity contract, proven statically;
* **REP009** executor-worker-reachable writes to module-level state,
  and unpicklable submit payloads;
* **REP010** ndarray views over ``SharedMemory.buf``/mmap buffers that
  escape their function while the owning handle is neither pinned in a
  process-lifetime registry nor kept alongside the views (the
  GC-closes-mapping-under-live-views segfault, proven statically);
* **REP011** escaping shared-buffer views not locked with
  ``flags.writeable = False``, service-reachable code flipping
  writeability back on, and any mutation through such a view;
* **REP012** resource acquire/release discipline: acquisitions
  (``SharedMemory``, ``open``, ``mkdtemp``, executors) must release on
  every non-exception path or be pinned/``with``-managed, monkeypatched
  module attributes must be restored in a ``finally``, and owner
  handles escaping into a class need a reachable release method.

REP007-REP012 run over a whole-program call graph assembled from
per-function effect summaries (:mod:`tools.analyze.effects`,
:mod:`tools.analyze.callgraph`, :mod:`tools.analyze.dataflow`), with
per-file products cached by content hash
(:mod:`tools.analyze.cache`).

Run it as ``python -m tools.analyze`` or ``make analyze``; suppress an
intentional finding inline with ``# repro: noqa[REPxxx] why``; the
committed ``baseline.json`` grandfathers transitional debt.  The
:mod:`tools.analyze.lintrules` module also hosts the builtin lint
fallback shared with ``tools/lint.py`` (one rule source of truth:
``pyproject.toml``).
"""

import sys
from pathlib import Path

# Make absolute ``tools.analyze.*`` imports work when the package is
# imported with only the repo root's parent on sys.path.
_REPO = Path(__file__).resolve().parent.parent.parent
if str(_REPO) not in sys.path:
    sys.path.insert(0, str(_REPO))

from tools.analyze.rules import (  # noqa: E402
    RULES,
    Finding,
    Rule,
    SuppressionTable,
    all_rules,
    register_rule,
)
from tools.analyze import visitors  # noqa: E402,F401 - registers rules
from tools.analyze import contracts  # noqa: E402,F401 - registers REP004
from tools.analyze import interproc  # noqa: E402,F401 - registers REP007-12
from tools.analyze.contracts import check_backend, check_registry  # noqa: E402
from tools.analyze.driver import analyze_paths, main  # noqa: E402
from tools.analyze.reporting import (  # noqa: E402
    Report,
    render_github,
    render_human,
    render_json,
)

__all__ = [
    "Finding",
    "Report",
    "RULES",
    "Rule",
    "SuppressionTable",
    "all_rules",
    "analyze_paths",
    "check_backend",
    "check_registry",
    "main",
    "register_rule",
    "render_github",
    "render_human",
    "render_json",
]
