"""Human and JSON rendering of an analysis report."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from tools.analyze.rules import RULES, Finding


@dataclass
class Report:
    """Everything one analyzer invocation decided."""

    targets: List[str] = field(default_factory=list)
    files: List[str] = field(default_factory=list)
    context: str = "auto"
    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: ``(path, line, code)`` of ``# repro: noqa[...]`` entries that
    #: matched no finding.
    unused_suppressions: List[Tuple[str, int, str]] = \
        field(default_factory=list)
    #: Incremental-cache accounting (zeros when the cache is off).
    cache_enabled: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    #: Wall-clock seconds per analysis phase (parse / effects /
    #: interproc), for cost-regression tracking in the CI artifact.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: ``--strict-suppressions``: unused noqas become findings.
    strict_suppressions: bool = False

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        return {"files": len(self.files),
                "findings": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
                "unused_suppressions": len(self.unused_suppressions)}


def to_json_dict(report: Report) -> Dict[str, object]:
    return {
        "tool": "repro-analyze",
        "version": 1,
        "targets": report.targets,
        "context": report.context,
        "rules": {code: RULES[code].title for code in sorted(RULES)},
        "counts": report.counts(),
        "ok": report.ok,
        "findings": [f.to_dict() for f in report.findings],
        "baselined": [f.to_dict() for f in report.baselined],
        "suppressed": [f.to_dict() for f in report.suppressed],
        "unused_suppressions": [
            {"path": path, "line": line, "rule": code}
            for path, line, code in report.unused_suppressions],
        # Kept in its own key so warm/cold runs stay byte-identical
        # everywhere else (compare the dict minus ``cache``).
        "cache": {"enabled": report.cache_enabled,
                  "hits": report.cache_hits,
                  "misses": report.cache_misses},
        # Likewise timing-dependent: its own key, never in findings.
        "perf": {"phase_seconds": {
            phase: round(seconds, 6)
            for phase, seconds in sorted(
                report.phase_seconds.items())}},
    }


def render_json(report: Report) -> str:
    return json.dumps(to_json_dict(report), indent=1)


def render_human(report: Report, show_baselined: bool = False) -> str:
    lines: List[str] = []
    for finding in report.findings:
        lines.append(f"{finding.location()}: {finding.rule} "
                     f"{finding.message}")
    if show_baselined:
        for finding in report.baselined:
            lines.append(f"{finding.location()}: {finding.rule} "
                         f"{finding.message} [baselined]")
    for path, line, code in report.unused_suppressions:
        lines.append(f"{path}:{line}: warning: unused suppression "
                     f"repro: noqa[{code}]")
    counts = report.counts()
    label = "finding" if counts["findings"] == 1 else "findings"
    cache = (f", cache {report.cache_hits} hit"
             f"{'s' if report.cache_hits != 1 else ''}/"
             f"{report.cache_misses} miss"
             f"{'es' if report.cache_misses != 1 else ''}"
             if report.cache_enabled else "")
    phases = ""
    if report.phase_seconds:
        phases = ", " + " ".join(
            f"{phase} {seconds:.2f}s" for phase, seconds
            in sorted(report.phase_seconds.items()))
    lines.append(
        f"repro-analyze: {counts['findings']} {label} "
        f"({counts['baselined']} baselined, {counts['suppressed']} "
        f"suppressed) across {counts['files']} files{cache}{phases}")
    return "\n".join(lines)


def _annotation_escape(text: str) -> str:
    """Escape a message for a GitHub workflow-command annotation."""
    return (text.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A"))


def render_github(report: Report) -> str:
    """GitHub Actions annotations: findings inline on the PR diff."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col},title={finding.rule}::"
            f"{_annotation_escape(finding.message)}")
    for path, line, code in report.unused_suppressions:
        lines.append(
            f"::warning file={path},line={line},title={code}::"
            f"unused suppression repro: noqa[{code}]")
    counts = report.counts()
    lines.append(
        f"repro-analyze: {counts['findings']} findings across "
        f"{counts['files']} files")
    return "\n".join(lines)
