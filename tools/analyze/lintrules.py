"""Builtin lint fallback, configured from ``pyproject.toml``.

``make lint`` runs ruff when installed (the CI path).  Containers
without ruff fall back to this module, which implements the selected
rules itself — and reads *the same* ``[tool.ruff]`` configuration from
``pyproject.toml`` (line length, selected codes, per-file ignores), so
there is exactly one source of truth and local and CI lint can never
diverge on the rule set.  Selection uses ruff's prefix semantics: a
check runs iff its code starts with one of the selected prefixes.

Implemented codes (a subset of ruff: anything flagged here, ruff flags
too, so a green fallback run cannot go red in CI for a rule this
container could not evaluate):

* E9    syntax / compile errors (always on)
* E501  line longer than the configured limit
* W291/W293  trailing whitespace
* W292  missing newline at end of file
* F401  module-level import bound but never used
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, List, Tuple

REPO = Path(__file__).resolve().parent.parent.parent
#: Directories ``make lint`` checks (mirrors the ruff invocation).
TARGETS = ("src", "tests", "benchmarks", "examples", "tools")

_DEFAULTS = {
    "line_length": 88,
    "select": ("E9", "E501", "W291", "W292", "W293", "F401"),
    "per_file_ignores": {"__init__.py": ("F401",)},
}


@dataclass
class LintConfig:
    """The ``[tool.ruff]`` subset both lint paths share."""

    line_length: int = _DEFAULTS["line_length"]
    select: Tuple[str, ...] = _DEFAULTS["select"]
    per_file_ignores: Dict[str, Tuple[str, ...]] = \
        field(default_factory=lambda: dict(_DEFAULTS["per_file_ignores"]))

    def enabled(self, code: str, path: Path = None) -> bool:
        """Is ``code`` selected (ruff prefix semantics) for ``path``?"""
        if not any(code.startswith(prefix) for prefix in self.select):
            return False
        if path is not None:
            for pattern, ignored in self.per_file_ignores.items():
                if fnmatch(path.name, pattern) \
                        or fnmatch(str(path), pattern):
                    if any(code.startswith(prefix)
                           for prefix in ignored):
                        return False
        return True


def load_lint_config(pyproject: Path = REPO / "pyproject.toml"
                     ) -> LintConfig:
    """Parse the shared lint configuration out of ``pyproject.toml``."""
    try:
        import tomllib
    except ImportError:  # pragma: no cover - py<3.11 safety net
        return LintConfig()
    if not pyproject.exists():
        return LintConfig()
    data = tomllib.loads(pyproject.read_text())
    ruff = data.get("tool", {}).get("ruff", {})
    lint = ruff.get("lint", {})
    ignores = {pattern: tuple(codes) for pattern, codes in
               lint.get("per-file-ignores", {}).items()}
    return LintConfig(
        line_length=int(ruff.get("line-length",
                                 _DEFAULTS["line_length"])),
        select=tuple(lint.get("select", _DEFAULTS["select"])),
        per_file_ignores=ignores or dict(_DEFAULTS["per_file_ignores"]))


def _used_names(tree: ast.AST) -> set:
    """Every identifier a module references, incl. quoted annotations."""
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            used.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # Forward references ("FlatDesign"), __all__ entries and
            # doctest snippets keep their imports alive.
            for token in node.value.replace(".", " ").split():
                if token.isidentifier():
                    used.add(token)
    return used


def _unused_imports(tree: ast.Module):
    """(line, name) of module-level imports never referenced (F401)."""
    imported = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                imported.append((node.lineno, name))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                imported.append((node.lineno,
                                 alias.asname or alias.name))
    used = _used_names(tree)
    return [(line, name) for line, name in imported if name not in used]


def check_file(path: Path, config: LintConfig) -> List[tuple]:
    """``(path, line, message)`` findings for one file."""
    findings = []
    text = path.read_text()
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as error:
        if config.enabled("E9", path):
            return [(path, error.lineno or 0,
                     f"E9 syntax error: {error.msg}")]
        return []

    limit = config.line_length
    for number, line in enumerate(text.splitlines(), start=1):
        if len(line) > limit and config.enabled("E501", path):
            findings.append((path, number,
                             f"E501 line too long ({len(line)} > "
                             f"{limit})"))
        if line != line.rstrip():
            code = "W293" if not line.strip() else "W291"
            if config.enabled(code, path):
                findings.append((path, number,
                                 f"{code} trailing whitespace"))
    if text and not text.endswith("\n") and config.enabled("W292", path):
        findings.append((path, text.count("\n") + 1,
                         "W292 no newline at end of file"))

    if config.enabled("F401", path):
        for line, name in _unused_imports(tree):
            findings.append((path, line,
                             f"F401 {name!r} imported but unused"))
    return findings


def run_fallback(config: LintConfig = None) -> int:
    """Lint every target tree; 0 iff clean (the ``make lint`` gate)."""
    config = config if config is not None else load_lint_config()
    findings = []
    for target in TARGETS:
        root = REPO / target
        if not root.exists():
            continue
        for path in sorted(root.rglob("*.py")):
            findings.extend(check_file(path, config))
    for path, line, message in findings:
        print(f"{path.relative_to(REPO)}:{line}: {message}")
    label = "finding" if len(findings) == 1 else "findings"
    print(f"lint fallback (ruff not installed, rules from "
          f"pyproject.toml): {len(findings)} {label}")
    return 1 if findings else 0
