"""The committed baseline of grandfathered findings.

The baseline lets the analyzer gate CI from day one: known findings are
recorded once (``--write-baseline``) and matched *by content* — rule,
path and the stripped source-line text — so unrelated edits that shift
line numbers never invalidate an entry, while editing the flagged line
itself surfaces the finding again.  Entries are consumed one-for-one,
so two identical violations need two entries.  The project keeps the
baseline empty whenever possible: intentional violations carry an
inline ``# repro: noqa[REPxxx]`` justification instead (see ISSUE /
ROADMAP), and the baseline exists for genuinely transitional debt.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from tools.analyze.rules import Finding

VERSION = 1


def entry_key(finding: Finding,
              line_text: str) -> Tuple[str, str, str]:
    return (finding.rule, finding.path, line_text.strip())


def load_baseline(path: Path) -> Counter:
    """Multiset of baseline entries; empty when the file is absent."""
    if not path.exists():
        return Counter()
    data = json.loads(path.read_text())
    entries = Counter()
    for entry in data.get("entries", ()):
        entries[(entry["rule"], entry["path"], entry["text"])] += 1
    return entries


def write_baseline(path: Path,
                   findings: Sequence[Tuple[Finding, str]]) -> None:
    """Persist ``(finding, line_text)`` pairs as the new baseline."""
    entries: List[Dict[str, str]] = []
    for finding, line_text in sorted(
            findings, key=lambda pair: (pair[0].path, pair[0].line,
                                        pair[0].rule)):
        rule, rel, text = entry_key(finding, line_text)
        entries.append({"rule": rule, "path": rel, "text": text})
    payload = {"version": VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=1) + "\n")


def split_baselined(findings: Sequence[Tuple[Finding, str]],
                    baseline: Counter):
    """Partition into (active, baselined), consuming baseline entries."""
    remaining = Counter(baseline)
    active: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding, line_text in findings:
        key = entry_key(finding, line_text)
        if remaining[key] > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            active.append(finding)
    return active, grandfathered
