"""Fixed-point propagation of effect summaries over the call graph.

Three engines, one worklist discipline each, all deterministic (the
worklists are seeded and drained in :meth:`Program.sorted_functions`
order so warm-cache and cold runs emit byte-identical findings):

* :func:`propagate_param_taint` — forward taint from a root function's
  parameters through argument aliasing; surfaces every direct array
  mutation of a tainted value, with the call chain back to the root
  (REP008 kernel purity).
* :func:`reachable_from` — call-graph reachability with parent links
  from a set of entry points (REP009 process safety).
* :func:`propagate_seed_demands` — *backward* demand propagation: an
  RNG constructed from a plain parameter demands seed provenance of
  every call site feeding that parameter; demands hop caller-to-caller
  until satisfied by a constant/seed-named value or refuted by an
  opaque one (REP007 seed provenance).
* :func:`resource_release_report` — intraprocedural all-paths
  must-release interpretation of one function's resource skeleton
  (REP010/REP012 resource lifetime).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from tools.analyze.callgraph import (FunctionId, Program,
                                     map_args_to_params)


@dataclass
class TaintedMutation:
    """One array mutation of a value aliasing a root parameter."""

    function: FunctionId
    param: str            # mutated parameter in ``function``
    root_param: str       # the root's parameter it aliases
    kind: str
    detail: str
    line: int
    col: int
    chain: List[FunctionId]   # root ... function


def propagate_param_taint(program: Program, root: FunctionId,
                          params: Sequence[str]
                          ) -> List[TaintedMutation]:
    """Every array mutation reachable from ``root``'s parameters."""
    results: List[TaintedMutation] = []
    seen: Set[Tuple[FunctionId, str]] = set()
    # (function, param, root_param, chain)
    worklist: List[Tuple[FunctionId, str, str, List[FunctionId]]] = []
    for param in params:
        worklist.append((root, param, param, [root]))
        seen.add((root, param))
    while worklist:
        function, param, root_param, chain = worklist.pop(0)
        summary = program.summary(function)
        for mutated, kind, detail, line, col in summary.mutations:
            if mutated == param:
                results.append(TaintedMutation(
                    function=function, param=param,
                    root_param=root_param, kind=kind, detail=detail,
                    line=line, col=col, chain=chain))
        for callee, bound, site in program.edges.get(function, ()):
            mapping = map_args_to_params(program.summary(callee),
                                         bound, site)
            for callee_param, arg in mapping.items():
                if getattr(arg, "alias", None) != param:
                    continue
                key = (callee, callee_param)
                if key in seen:
                    continue
                seen.add(key)
                worklist.append((callee, callee_param, root_param,
                                 chain + [callee]))
    results.sort(key=lambda m: (program.relpath_of(m.function),
                                m.line, m.col, m.param))
    return results


def reachable_from(program: Program, roots: Sequence[FunctionId]
                   ) -> Dict[FunctionId, Optional[FunctionId]]:
    """``{function: parent}`` for everything the roots can call."""
    parents: Dict[FunctionId, Optional[FunctionId]] = {}
    worklist: List[FunctionId] = []
    for root in roots:
        if root in program.functions and root not in parents:
            parents[root] = None
            worklist.append(root)
    while worklist:
        function = worklist.pop(0)
        for callee, _bound, _site in program.edges.get(function, ()):
            if callee not in parents:
                parents[callee] = function
                worklist.append(callee)
    return parents


def chain_to_root(parents: Dict[FunctionId, Optional[FunctionId]],
                  function: FunctionId) -> List[FunctionId]:
    """``[root, ..., function]`` through the BFS parent links."""
    chain = [function]
    while parents.get(chain[0]) is not None:
        chain.insert(0, parents[chain[0]])
    return chain


@dataclass
class SeedViolation:
    """A call feeding a non-seed value into an RNG-seeding parameter."""

    function: FunctionId      # the caller holding the bad call site
    line: int
    col: int
    callee: FunctionId        # function whose parameter seeds the RNG
    param: str
    ctor: str                 # RNG constructor ultimately reached
    ctor_site: str            # ``path:line`` of the construction


def propagate_seed_demands(program: Program) -> List[SeedViolation]:
    """Backward seed-provenance demands for param-seeded RNG ctors."""
    violations: List[SeedViolation] = []
    seen: Set[Tuple[FunctionId, str]] = set()
    # (function, param, ctor, ctor_site)
    worklist: List[Tuple[FunctionId, str, str, str]] = []
    for function in program.sorted_functions():
        summary = program.summary(function)
        for ctor, seed, line, _col, context in summary.rng:
            if context != "call" or not seed.startswith("param:"):
                continue
            param = seed.split(":", 1)[1]
            site = f"{program.relpath_of(function)}:{line}"
            if (function, param) not in seen:
                seen.add((function, param))
                worklist.append((function, param, ctor, site))
    while worklist:
        function, param, ctor, ctor_site = worklist.pop(0)
        callers = sorted(
            program.callers.get(function, ()),
            key=lambda entry: (program.relpath_of(entry[0]),
                               entry[2].line, entry[2].col))
        for caller, bound, site in callers:
            mapping = map_args_to_params(program.summary(function),
                                         bound, site)
            arg = mapping.get(param)
            if arg is None:
                continue          # default value used; nothing flows
            seed = getattr(arg, "seed", "opaque")
            if seed in ("const", "seedlike"):
                continue
            if seed.startswith("param:"):
                up = seed.split(":", 1)[1]
                if (caller, up) not in seen:
                    seen.add((caller, up))
                    worklist.append((caller, up, ctor, ctor_site))
                continue
            violations.append(SeedViolation(
                function=caller, line=site.line, col=site.col,
                callee=function, param=param, ctor=ctor,
                ctor_site=ctor_site))
    violations.sort(key=lambda v: (program.relpath_of(v.function),
                                   v.line, v.col))
    return violations

@dataclass
class ResourceReport:
    """All-paths release verdicts for one function's resource skeleton.

    ``leaks`` are local acquisitions that can fall off the end of the
    function (or a return) still open on the non-exception route;
    ``escapes`` are open handles handed to another call before any
    release; ``attr_open`` are acquisitions stored on ``self``/module
    attributes, which the caller must audit at class scope.
    ``returned`` maps handle names to resource kinds for acquisitions
    whose ownership transfers to the caller via ``return``;
    ``pinned_returns`` are returned handles that were first parked in a
    process-lifetime registry (the sanctioned pin-and-return idiom).
    """

    leaks: List[Tuple[str, str, int, int]]
    escapes: List[Tuple[str, int]]
    attr_open: List[Tuple[str, str, int, int]]
    returned: Dict[str, str]
    pinned_returns: Set[str]
    pinned: Set[str]


def _release_vars(ops: Sequence) -> Set[str]:
    """Handles that a block can release (worst case, any branch)."""
    released: Set[str] = set()
    for op in ops:
        if op[0] in ("rel", "pin"):
            released.add(op[1])
        elif op[0] == "if":
            released |= _release_vars(op[1]) | _release_vars(op[2])
        elif op[0] == "loop":
            released |= _release_vars(op[1])
        elif op[0] == "try":
            released |= (_release_vars(op[1]) | _release_vars(op[2])
                         | _release_vars(op[3]))
    return released


def resource_release_report(summary, proxy=None, module_scope=False
                            ) -> ResourceReport:
    """Interpret ``summary.skeleton`` for must-release on all paths.

    ``proxy`` maps ``(bound_name, line)`` of call-result bindings to a
    resource kind, letting the caller treat ``shm = open_segment(n)``
    as an acquisition when interprocedural analysis shows the callee
    returns an unpinned handle.  ``module_scope`` relaxes end-of-body
    leaks: module-level handles are process-lifetime by construction.
    """
    proxy = proxy or {}
    report = ResourceReport(leaks=[], escapes=[], attr_open=[],
                            returned={}, pinned_returns=set(),
                            pinned=set())

    def run(ops, state, finals) -> bool:
        for op in ops:
            tag = op[0]
            if tag == "acq":
                _t, var, kind, line, col, _owner, managed = op
                if managed:
                    continue
                if var is None:
                    report.leaks.append(("<anonymous>", kind, line,
                                         col))
                else:
                    state[var] = (kind, line, col)
            elif tag == "acqret":
                report.returned["<return>"] = op[1]
            elif tag == "bind":
                kind = proxy.get((op[1], op[2]))
                if kind is not None:
                    state[op[1]] = (kind, op[2], 0)
            elif tag == "rel":
                state.pop(op[1], None)
            elif tag == "pin":
                report.pinned.add(op[1])
                state.pop(op[1], None)
            elif tag == "esc":
                if op[1] in state:
                    report.escapes.append((op[1], op[2]))
                    state.pop(op[1])
            elif tag == "ret":
                _t, names, _line = op
                final = dict(state)
                for released in finals:
                    for var in released:
                        final.pop(var, None)
                report.pinned_returns.update(
                    set(names) & report.pinned)
                for var, (kind, line, col) in final.items():
                    if var in names:
                        report.returned[var] = kind
                    elif "." in var:
                        report.attr_open.append((var, kind, line,
                                                 col))
                    else:
                        report.leaks.append((var, kind, line, col))
                return False
            elif tag == "raise":
                return False
            elif tag == "if":
                then_state, else_state = dict(state), dict(state)
                then_falls = run(op[1], then_state, finals)
                else_falls = run(op[2], else_state, finals)
                if then_falls and else_falls:
                    state.clear()
                    state.update(else_state)
                    state.update(then_state)   # worst-case union
                elif then_falls:
                    state.clear()
                    state.update(then_state)
                elif else_falls:
                    state.clear()
                    state.update(else_state)
                else:
                    return False
            elif tag == "loop":
                body_state = dict(state)
                run(op[1], body_state, finals)
                for var, info in body_state.items():
                    state.setdefault(var, info)  # zero-or-more trips
            elif tag == "try":
                finally_rel = _release_vars(op[3])
                falls = run(op[1], state, finals + [finally_rel])
                if falls:
                    falls = run(op[2], state, finals + [finally_rel])
                final_falls = run(op[3], state, finals)
                if not (falls and final_falls):
                    return False
        return True

    state: Dict[str, Tuple[str, int, int]] = {}
    if run(summary.skeleton, state, []):
        for var, (kind, line, col) in state.items():
            if "." in var:
                report.attr_open.append((var, kind, line, col))
            elif not module_scope:
                report.leaks.append((var, kind, line, col))

    seen: Set[Tuple[str, int]] = set()
    deduped = []
    for var, kind, line, col in report.leaks:
        if (var, line) not in seen:
            seen.add((var, line))
            deduped.append((var, kind, line, col))
    report.leaks = sorted(deduped, key=lambda x: (x[2], x[3], x[0]))
    report.escapes.sort(key=lambda x: (x[1], x[0]))
    report.attr_open.sort(key=lambda x: (x[2], x[3], x[0]))
    return report
