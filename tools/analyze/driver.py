"""Analyzer driver: file collection, orchestration, CLI.

``python -m tools.analyze [paths...]`` (default target: ``src``) parses
every ``*.py`` under the targets, runs each registered AST rule in its
scope, applies inline ``# repro: noqa[REPxxx]`` suppressions and the
committed baseline, runs the project rules (REP004 backend-contract
introspection), and exits 1 on any unbaselined finding.  ``--json``
prints the machine-readable report; ``--json-out`` additionally writes
it to a file (CI uploads it next to the ``BENCH_*.json`` artifacts).
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from tools.analyze import baseline as baseline_mod
from tools.analyze.reporting import (Report, render_human, render_json,
                                     to_json_dict)
from tools.analyze.rules import Finding, SuppressionTable, all_rules

REPO = Path(__file__).resolve().parent.parent.parent
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def _ensure_importable() -> None:
    """Make ``repro`` (REP004) and ``tools`` importable everywhere."""
    for entry in (str(REPO / "src"), str(REPO)):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def collect_files(targets: Sequence[str],
                  repo: Path = REPO) -> List[Path]:
    """Every ``*.py`` file under the targets, sorted and deduped."""
    files: List[Path] = []
    seen = set()
    for target in targets:
        path = Path(target)
        if not path.is_absolute():
            path = repo / target
        if path.is_file():
            candidates = [path]
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            resolved = candidate.resolve()
            if "__pycache__" in resolved.parts or resolved in seen:
                continue
            seen.add(resolved)
            files.append(resolved)
    return files


def _relpath(path: Path, repo: Path) -> str:
    try:
        return path.relative_to(repo).as_posix()
    except ValueError:
        return path.as_posix()


def analyze_paths(targets: Sequence[str] = ("src",), *,
                  repo: Path = REPO, context: str = "auto",
                  contracts: bool = True,
                  baseline_path: Optional[Path] = None) -> Report:
    """Run every rule over ``targets`` and return the full report.

    ``context="auto"`` honours each rule's path scope (the production
    gate); ``context="all"`` applies every rule to every file (used by
    the self-tests so fixtures outside ``src/`` exercise scoped
    rules).  ``contracts=False`` skips the REP004 registry
    introspection.
    """
    _ensure_importable()
    report = Report(targets=list(targets), context=context)
    raw: List[Tuple[Finding, str]] = []

    for path in collect_files(targets, repo):
        relpath = _relpath(path, repo)
        report.files.append(relpath)
        text = path.read_text()
        lines = text.splitlines()
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as error:
            raw.append((Finding("REP000", relpath, error.lineno or 1,
                                error.offset or 0,
                                f"file does not parse: {error.msg}"),
                        ""))
            continue
        suppressions = SuppressionTable.parse(lines)
        for rule in all_rules():
            if rule.project_rule:
                continue
            if context != "all" and not rule.applies(relpath):
                continue
            for finding in rule.check(tree, relpath, lines):
                if suppressions.suppresses(finding):
                    report.suppressed.append(finding)
                    continue
                line_text = (lines[finding.line - 1]
                             if 0 < finding.line <= len(lines) else "")
                raw.append((finding, line_text))
        for line, code in suppressions.unused():
            report.unused_suppressions.append((relpath, line, code))

    if contracts:
        for rule in all_rules():
            if not rule.project_rule:
                continue
            for finding in rule.check_project(repo):
                raw.append((finding, ""))

    entries = baseline_mod.load_baseline(
        baseline_path if baseline_path is not None else DEFAULT_BASELINE)
    active, grandfathered = baseline_mod.split_baselined(raw, entries)
    report.findings.extend(active)
    report.baselined.extend(grandfathered)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="repro-analyze: determinism & backend-contract "
                    "static analyzer (rules REP001-REP006)")
    parser.add_argument("targets", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    parser.add_argument("--context", choices=("auto", "all"),
                        default="auto",
                        help="auto = honour per-rule path scopes; "
                             "all = run every rule everywhere")
    parser.add_argument("--no-contracts", action="store_true",
                        help="skip REP004 backend-registry "
                             "introspection")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: "
                             "tools/analyze/baseline.json)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current "
                             "findings and exit 0")
    parser.add_argument("--show-baselined", action="store_true",
                        help="also print grandfathered findings")
    parser.add_argument("--json", action="store_true",
                        help="print the JSON report instead of text")
    parser.add_argument("--json-out", default=None,
                        help="also write the JSON report to this path")
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline) if args.baseline else None
    report = analyze_paths(
        args.targets, context=args.context,
        contracts=not args.no_contracts, baseline_path=baseline_path)

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        pairs = []
        for finding in report.findings + report.baselined:
            source = REPO / finding.path
            text = ""
            if source.exists() and finding.line > 0:
                lines = source.read_text().splitlines()
                if finding.line <= len(lines):
                    text = lines[finding.line - 1]
            pairs.append((finding, text))
        baseline_mod.write_baseline(target, pairs)
        print(f"wrote {len(pairs)} baseline entries to {target}")
        return 0

    if args.json_out:
        out = Path(args.json_out)
        if not out.is_absolute():
            out = REPO / out
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(render_json(report) + "\n")

    if args.json:
        print(render_json(report))
    else:
        print(render_human(report, show_baselined=args.show_baselined))
        if args.json_out:
            print(f"json report: {args.json_out}")
    return 0 if report.ok else 1


# Re-exported for callers that import the driver directly.
__all__ = ["analyze_paths", "collect_files", "main", "Report",
           "to_json_dict", "REPO", "DEFAULT_BASELINE"]
