"""Analyzer driver: file collection, orchestration, CLI.

``python -m tools.analyze [paths...]`` (default targets: ``src``,
``benchmarks``, ``tools``) parses every ``*.py`` under the targets,
runs each registered AST rule in its scope, assembles per-function
effect summaries into a whole-program call graph and runs the
interprocedural rules (REP007-REP012) over it, applies inline
``# repro: noqa[REPxxx]`` suppressions (matched against the flagged
statement's full line span) and the committed baseline, runs the
project rules (REP004 backend-contract introspection), and exits 1 on
any unbaselined finding.  ``--strict-suppressions`` additionally
turns unused noqa comments into exit-1 findings so stale waivers
cannot accumulate.

Per-file products (local findings, effect summaries, statement spans)
are cached under ``.cache/analyze_cache.json`` keyed by content hash,
so a warm run re-parses only changed files; the interprocedural phase
is recomputed from the summaries every run, keeping warm and cold
findings byte-identical.  ``--format json`` prints the
machine-readable report, ``--format github`` emits workflow-command
annotations for CI, and ``--json-out`` writes the JSON report to a
file (CI uploads it next to the ``BENCH_*.json`` artifacts).
"""

from __future__ import annotations

import argparse
import ast
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from tools.analyze import baseline as baseline_mod
from tools.analyze.cache import (DEFAULT_CACHE, AnalysisCache,
                                 file_digest, tools_digest)
from tools.analyze.callgraph import Program
from tools.analyze.effects import ModuleSummary, summarize_module
from tools.analyze.reporting import (Report, render_github,
                                     render_human, render_json,
                                     to_json_dict)
from tools.analyze.rules import (Finding, SuppressionTable, all_rules,
                                 statement_spans)

REPO = Path(__file__).resolve().parent.parent.parent
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"
#: CLI analysis roots: the gate self-hosts over its own sources.
DEFAULT_TARGETS = ("src", "benchmarks", "tools")


def _ensure_importable() -> None:
    """Make ``repro`` (REP004) and ``tools`` importable everywhere."""
    for entry in (str(REPO / "src"), str(REPO)):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def collect_files(targets: Sequence[str],
                  repo: Path = REPO) -> List[Path]:
    """Every ``*.py`` file under the targets, sorted and deduped."""
    files: List[Path] = []
    seen = set()
    for target in targets:
        path = Path(target)
        if not path.is_absolute():
            path = repo / target
        if path.is_file():
            candidates = [path]
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            resolved = candidate.resolve()
            if "__pycache__" in resolved.parts or resolved in seen:
                continue
            seen.add(resolved)
            files.append(resolved)
    return files


def _relpath(path: Path, repo: Path) -> str:
    try:
        return path.relative_to(repo).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class _FileRecord:
    """Per-file analysis products, fresh or cache-served."""

    relpath: str
    lines: List[str]
    table: SuppressionTable
    #: Pre-suppression local (AST-rule) findings.
    local: List[Finding] = field(default_factory=list)
    summary: Optional[ModuleSummary] = None


def _analyze_file(relpath: str, text: str, lines: Sequence[str],
                  path: Path, context: str,
                  timings: Optional[Dict[str, float]] = None) -> Tuple[
                      List[Finding], Optional[ModuleSummary],
                      List[Tuple[int, int]]]:
    """Fresh per-file analysis: local findings, summary, spans."""
    started = time.perf_counter()
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as error:
        finding = Finding("REP000", relpath, error.lineno or 1,
                          error.offset or 0,
                          f"file does not parse: {error.msg}")
        return [finding], None, []
    local: List[Finding] = []
    for rule in all_rules():
        if rule.project_rule or rule.graph_rule:
            continue
        if context != "all" and not rule.applies(relpath):
            continue
        local.extend(rule.check(tree, relpath, lines))
    spans = statement_spans(tree)
    parsed = time.perf_counter()
    summary = summarize_module(tree, relpath)
    done = time.perf_counter()
    if timings is not None:
        timings["parse"] = timings.get("parse", 0.0) + (parsed - started)
        timings["effects"] = timings.get("effects", 0.0) + (done - parsed)
    return local, summary, spans


def analyze_paths(targets: Sequence[str] = ("src",), *,
                  repo: Path = REPO, context: str = "auto",
                  contracts: bool = True,
                  baseline_path: Optional[Path] = None,
                  cache_path: Optional[Path] = None,
                  strict_suppressions: bool = False) -> Report:
    """Run every rule over ``targets`` and return the full report.

    ``context="auto"`` honours each rule's path scope (the production
    gate); ``context="all"`` applies every rule to every file (used by
    the self-tests so fixtures outside ``src/`` exercise scoped
    rules).  ``contracts=False`` skips the REP004 registry
    introspection.  ``cache_path`` enables the incremental per-file
    cache (off by default so library callers never write repo state;
    the CLI turns it on).  ``strict_suppressions`` turns unused noqa
    comments into REP000 findings so the gate fails on stale waivers.
    """
    _ensure_importable()
    report = Report(targets=list(targets), context=context,
                    strict_suppressions=strict_suppressions)
    cache = None
    if cache_path is not None:
        report.cache_enabled = True
        cache = AnalysisCache.load(cache_path, tools_digest())

    records: List[_FileRecord] = []
    for path in collect_files(targets, repo):
        relpath = _relpath(path, repo)
        report.files.append(relpath)
        text = path.read_text()
        lines = text.splitlines()
        record = _FileRecord(relpath=relpath, lines=lines,
                             table=SuppressionTable.parse(lines))
        digest = file_digest(text) if cache is not None else ""
        cached = (cache.get(relpath, digest, context)
                  if cache is not None else None)
        if cached is not None:
            report.cache_hits += 1
            record.local = [Finding(**data)
                            for data in cached["findings"]]
            record.summary = (ModuleSummary.from_dict(cached["summary"])
                              if cached["summary"] else None)
            record.table.spans = [tuple(span)
                                  for span in cached["spans"]]
        else:
            if cache is not None:
                report.cache_misses += 1
            local, summary, spans = _analyze_file(
                relpath, text, lines, path, context,
                timings=report.phase_seconds)
            record.local = local
            record.summary = summary
            record.table.spans = spans
            if cache is not None:
                cache.put(relpath, digest, context, {
                    "findings": [f.to_dict() for f in local],
                    "summary": summary.to_dict() if summary else None,
                    "spans": [list(span) for span in spans]})
        records.append(record)
    if cache is not None:
        cache.save()

    tables: Dict[str, SuppressionTable] = {r.relpath: r.table
                                           for r in records}
    lines_of: Dict[str, List[str]] = {r.relpath: r.lines
                                      for r in records}
    raw: List[Tuple[Finding, str]] = []

    def admit(finding: Finding) -> None:
        table = tables.get(finding.path)
        if table is not None and table.suppresses(finding):
            report.suppressed.append(finding)
            return
        lines = lines_of.get(finding.path, ())
        text = (lines[finding.line - 1]
                if 0 < finding.line <= len(lines) else "")
        raw.append((finding, text))

    for record in records:
        for finding in record.local:
            admit(finding)

    # Interprocedural phase: always recomputed from the summaries so
    # warm (cache-served) and cold runs emit identical findings.
    interproc_started = time.perf_counter()
    program = Program(r.summary for r in records
                      if r.summary is not None)
    graph_findings: List[Finding] = []
    for rule in all_rules():
        if rule.graph_rule:
            graph_findings.extend(rule.check_program(program))
    graph_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    for finding in graph_findings:
        admit(finding)
    report.phase_seconds["interproc"] = (
        report.phase_seconds.get("interproc", 0.0)
        + time.perf_counter() - interproc_started)

    if contracts:
        for rule in all_rules():
            if not rule.project_rule:
                continue
            for finding in rule.check_project(repo):
                raw.append((finding, ""))

    # Unused-suppression sweep last: graph findings also consume noqas.
    for record in records:
        for line, code in record.table.unused():
            report.unused_suppressions.append(
                (record.relpath, line, code))
            if strict_suppressions:
                lines = lines_of.get(record.relpath, ())
                text = (lines[line - 1]
                        if 0 < line <= len(lines) else "")
                raw.append((Finding(
                    "REP000", record.relpath, line, 0,
                    f"unused suppression repro: noqa[{code}]: no "
                    f"{code} finding matches this statement; delete "
                    f"the stale waiver"), text))

    entries = baseline_mod.load_baseline(
        baseline_path if baseline_path is not None else DEFAULT_BASELINE)
    active, grandfathered = baseline_mod.split_baselined(raw, entries)
    report.findings.extend(active)
    report.baselined.extend(grandfathered)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="repro-analyze: determinism & backend-contract "
                    "static analyzer (rules REP001-REP012)")
    parser.add_argument("targets", nargs="*",
                        default=list(DEFAULT_TARGETS),
                        help="files or directories (default: "
                             + " ".join(DEFAULT_TARGETS) + ")")
    parser.add_argument("--context", choices=("auto", "all"),
                        default="auto",
                        help="auto = honour per-rule path scopes; "
                             "all = run every rule everywhere")
    parser.add_argument("--no-contracts", action="store_true",
                        help="skip REP004 backend-registry "
                             "introspection")
    parser.add_argument("--strict-suppressions", action="store_true",
                        help="unused repro: noqa comments become "
                             "exit-1 REP000 findings")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: "
                             "tools/analyze/baseline.json)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current "
                             "findings and exit 0")
    parser.add_argument("--show-baselined", action="store_true",
                        help="also print grandfathered findings")
    parser.add_argument("--format", choices=("human", "json", "github"),
                        default="human", dest="format",
                        help="report format (github = workflow-command "
                             "annotations for CI)")
    parser.add_argument("--json", action="store_true",
                        help="alias for --format json")
    parser.add_argument("--json-out", default=None,
                        help="also write the JSON report to this path")
    parser.add_argument("--cache", default=str(DEFAULT_CACHE),
                        help="incremental cache file (default: "
                             ".cache/analyze_cache.json)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental cache")
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline) if args.baseline else None
    cache_path = None
    if not args.no_cache:
        cache_path = Path(args.cache)
        if not cache_path.is_absolute():
            cache_path = REPO / cache_path
    report = analyze_paths(
        args.targets, context=args.context,
        contracts=not args.no_contracts, baseline_path=baseline_path,
        cache_path=cache_path,
        strict_suppressions=args.strict_suppressions)

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        pairs = []
        for finding in report.findings + report.baselined:
            source = REPO / finding.path
            text = ""
            if source.exists() and finding.line > 0:
                lines = source.read_text().splitlines()
                if finding.line <= len(lines):
                    text = lines[finding.line - 1]
            pairs.append((finding, text))
        baseline_mod.write_baseline(target, pairs)
        print(f"wrote {len(pairs)} baseline entries to {target}")
        return 0

    if args.json_out:
        out = Path(args.json_out)
        if not out.is_absolute():
            out = REPO / out
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(render_json(report) + "\n")

    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(render_json(report))
    elif fmt == "github":
        print(render_github(report))
    else:
        print(render_human(report, show_baselined=args.show_baselined))
        if args.json_out:
            print(f"json report: {args.json_out}")
    return 0 if report.ok else 1


# Re-exported for callers that import the driver directly.
__all__ = ["analyze_paths", "collect_files", "main", "Report",
           "to_json_dict", "REPO", "DEFAULT_BASELINE",
           "DEFAULT_TARGETS"]
