"""Per-function effect summaries: the analyzer's interprocedural atoms.

:func:`summarize_module` walks one parsed file and produces a
serializable :class:`ModuleSummary`: for every function (including
methods and nested functions) a :class:`FunctionSummary` records

* **array mutations of parameters** — subscript stores, augmented
  assignments, mutating container/ndarray methods, ``out=`` keyword
  targets and ``np.<ufunc>.at`` first arguments whose base name aliases
  a parameter (aliases track ``y = x`` / ``y = x[...]`` view bindings);
* **module-level state writes** — stores through names that are not
  function-local (module globals, ``global`` declarations, names
  imported from other modules);
* **RNG constructions** — every ``random.Random`` /
  ``numpy.random.default_rng``-family call, classified by the seed
  provenance of its first argument (constant, seed-named value,
  parameter passthrough, or opaque) plus the construction context
  (plain call, module-global store, default-argument value);
* **wall-clock / environment reads**; and
* **call sites** with enough argument structure (alias + seed
  provenance per argument, ``.submit`` payloads) for
  :mod:`tools.analyze.dataflow` to propagate all of the above through
  the call graph to a fixed point.

Summaries are pure data (``to_dict``/``from_dict`` round-trip), so the
incremental cache can persist them per file keyed by content hash.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from tools.analyze.visitors import _canonical_call, _import_maps

#: Explicit-stream RNG constructors whose seed argument REP007 audits.
RNG_CTORS = {
    "random.Random", "numpy.random.default_rng",
    "numpy.random.RandomState", "numpy.random.SeedSequence",
    "numpy.random.PCG64", "numpy.random.PCG64DXSM",
    "numpy.random.MT19937", "numpy.random.Philox", "numpy.random.SFC64",
}

#: Methods that mutate their receiver in place (ndarray + containers).
ARRAY_MUTATING_METHODS = {
    "fill", "sort", "put", "partition", "resize", "itemset", "setfield",
    "byteswap", "append", "extend", "insert", "remove", "discard",
    "pop", "popitem", "clear", "update", "setdefault", "add", "reverse",
}

#: Wall-clock / environment read patterns (mirrors REP006).
CLOCK_CALL_PREFIXES = ("time.",)
CLOCK_CALLS = {"os.getenv", "datetime.datetime.now",
               "datetime.datetime.utcnow", "datetime.date.today",
               "datetime.now", "date.today"}

#: Functions transparent to seed provenance (``int(seed)`` is a seed).
_SEED_TRANSPARENT_CALLS = {"int", "abs", "hash", "str"}

_SELFISH = ("self", "cls")

#: Resource-acquiring constructors, canonical dotted name -> kind
#: (REP010/REP012).  ``open`` as a bare builtin is special-cased in
#: :meth:`_FunctionScanner._resource_kind`.
RESOURCE_CTORS = {
    "multiprocessing.shared_memory.SharedMemory": "shm",
    "shared_memory.SharedMemory": "shm",
    "mmap.mmap": "mmap",
    "tempfile.mkdtemp": "tempdir",
    "tempfile.mkstemp": "tempdir",
    "tempfile.TemporaryDirectory": "tempdir",
    "tempfile.NamedTemporaryFile": "open",
    "tempfile.TemporaryFile": "open",
    "concurrent.futures.ProcessPoolExecutor": "executor",
    "concurrent.futures.process.ProcessPoolExecutor": "executor",
    "concurrent.futures.ThreadPoolExecutor": "executor",
    "concurrent.futures.thread.ThreadPoolExecutor": "executor",
    "multiprocessing.Pool": "executor",
    "multiprocessing.pool.Pool": "executor",
}

#: Receiver methods that release the resource held by the receiver.
RELEASE_METHODS = {"close", "unlink", "shutdown", "cleanup",
                   "terminate"}

#: Module functions that release the resource passed as first
#: argument (``shutil.rmtree(tmp)``, ``os.replace(tmp, dst)``).
RELEASE_ARG_CALLS = {"rmtree", "replace", "remove", "rmdir", "unlink"}

#: ndarray-view constructors that can wrap a foreign buffer.
VIEW_CTORS = {"numpy.ndarray", "numpy.frombuffer"}


def is_seed_name(name: str) -> bool:
    """Does ``name`` explicitly claim seed provenance?"""
    return "seed" in name.lower()


def base_name(node: ast.AST) -> Optional[str]:
    """Left-most ``Name`` of an attribute/subscript chain, else None."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def attr_path(node: ast.AST) -> Optional[str]:
    """Dotted path of a pure ``Name``/``Attribute`` chain, else None.

    ``self._shm.buf`` -> ``"self._shm.buf"``; anything with a call or
    subscript in the chain is untrackable and yields ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ArgInfo:
    """One call argument, as the dataflow engine sees it."""

    #: Parameter of the *calling* function this argument aliases.
    alias: Optional[str] = None
    #: Seed provenance: ``const`` / ``seedlike`` / ``param:<name>`` /
    #: ``opaque``.
    seed: str = "opaque"
    #: Resolvable callable payload (``("name", f)`` / ``("dotted", d)``)
    #: when the argument is a plain function reference.
    callable_ref: Optional[Tuple[str, str]] = None
    is_lambda: bool = False
    #: Raw dotted path of the argument expression (``"shm"``,
    #: ``"self._shm"``) — unlike ``alias`` this survives for plain
    #: locals, which is what resource/view tracking needs.
    base: Optional[str] = None

    def to_dict(self):
        return {"alias": self.alias, "seed": self.seed,
                "callable_ref": list(self.callable_ref)
                if self.callable_ref else None,
                "is_lambda": self.is_lambda, "base": self.base}

    @classmethod
    def from_dict(cls, data):
        ref = data.get("callable_ref")
        return cls(alias=data.get("alias"),
                   seed=data.get("seed", "opaque"),
                   callable_ref=tuple(ref) if ref else None,
                   is_lambda=bool(data.get("is_lambda")),
                   base=data.get("base"))


@dataclass
class CallSite:
    """One call expression inside a function body."""

    #: ``("name", f)`` / ``("dotted", "pkg.mod.f")`` /
    #: ``("method", receiver_base, attr)``.
    target: Tuple[str, ...]
    line: int = 0
    col: int = 0
    args: List[ArgInfo] = field(default_factory=list)
    kwargs: Dict[str, ArgInfo] = field(default_factory=dict)
    #: Calling-function parameter the method receiver aliases.
    recv_alias: Optional[str] = None
    #: Assignment target of the call result (``"owner"``,
    #: ``"self._shm"``), when the call is bound to one.
    bind: Optional[str] = None

    def to_dict(self):
        return {"target": list(self.target), "line": self.line,
                "col": self.col,
                "args": [a.to_dict() for a in self.args],
                "kwargs": {k: v.to_dict()
                           for k, v in self.kwargs.items()},
                "recv_alias": self.recv_alias, "bind": self.bind}

    @classmethod
    def from_dict(cls, data):
        return cls(target=tuple(data["target"]), line=data["line"],
                   col=data["col"],
                   args=[ArgInfo.from_dict(a) for a in data["args"]],
                   kwargs={k: ArgInfo.from_dict(v)
                           for k, v in data["kwargs"].items()},
                   recv_alias=data.get("recv_alias"),
                   bind=data.get("bind"))


@dataclass
class FunctionSummary:
    """Everything the dataflow engine knows about one function."""

    qualname: str
    params: List[str] = field(default_factory=list)
    line: int = 0
    col: int = 0
    #: ``[param, kind, detail, line, col]`` direct array mutations.
    mutations: List[List] = field(default_factory=list)
    #: ``[name, line, col]`` writes through non-local names.
    global_writes: List[List] = field(default_factory=list)
    #: ``[what, line, col]`` wall-clock / environment reads.
    clock_reads: List[List] = field(default_factory=list)
    #: ``[ctor, seed_class, line, col, context]`` RNG constructions;
    #: context is ``call`` / ``global:<name>`` / ``default``.
    rng: List[List] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    #: ``[kind, name, line, col]`` payloads of ``.submit(...)`` calls;
    #: kind is ``lambda`` / ``nested`` / ``name`` / ``dotted``.
    submits: List[List] = field(default_factory=list)
    #: ``[kind, var|None, line, col, owner, managed]`` resource
    #: acquisitions; ``owner`` marks creating (``create=True``)
    #: handles, ``managed`` marks ``with``-statement contexts.
    resources: List[List] = field(default_factory=list)
    #: ``[base, line]`` release calls (``X.close()``,
    #: ``shutil.rmtree(X)``) by receiver/argument path.
    releases: List[List] = field(default_factory=list)
    #: ``[var, registry, line]`` stores into a module-level registry
    #: (``_ATTACHED[name] = shm``) — process-lifetime pins.
    pins: List[List] = field(default_factory=list)
    #: ``[target, line, col, restored]`` monkeypatch assignments to
    #: imported-module attributes; ``restored`` = re-assigned inside a
    #: ``finally`` suite.
    patches: List[List] = field(default_factory=list)
    #: ``[var, source, line]`` plain reads of an attribute chain into a
    #: local (``shm = self._shm``) — handle provenance for REP010.
    binds: List[List] = field(default_factory=list)
    #: ``[var, handle, line, col, readonly, escapes]`` ndarray views
    #: over a shared buffer; ``escapes`` lists ``return`` / ``store`` /
    #: ``arg`` / ``yield``.
    views: List[List] = field(default_factory=list)
    #: ``[base, line, col]`` assignments flipping
    #: ``X.flags.writeable`` back to writable.
    flips: List[List] = field(default_factory=list)
    #: ``[[names...], line]`` per ``return`` statement: every bare
    #: name appearing in the returned expression.
    returns: List[List] = field(default_factory=list)
    #: Nested control/resource skeleton interpreted by
    #: :func:`tools.analyze.dataflow.resource_release_report`.
    skeleton: List = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return bool(self.params) and self.params[0] in _SELFISH

    def to_dict(self):
        return {"qualname": self.qualname, "params": self.params,
                "line": self.line, "col": self.col,
                "mutations": self.mutations,
                "global_writes": self.global_writes,
                "clock_reads": self.clock_reads, "rng": self.rng,
                "calls": [c.to_dict() for c in self.calls],
                "submits": self.submits,
                "resources": self.resources,
                "releases": self.releases, "pins": self.pins,
                "patches": self.patches, "binds": self.binds,
                "views": self.views, "flips": self.flips,
                "returns": self.returns, "skeleton": self.skeleton}

    @classmethod
    def from_dict(cls, data):
        return cls(qualname=data["qualname"], params=data["params"],
                   line=data["line"], col=data["col"],
                   mutations=[list(m) for m in data["mutations"]],
                   global_writes=[list(w)
                                  for w in data["global_writes"]],
                   clock_reads=[list(r) for r in data["clock_reads"]],
                   rng=[list(r) for r in data["rng"]],
                   calls=[CallSite.from_dict(c)
                          for c in data["calls"]],
                   submits=[list(s) for s in data["submits"]],
                   resources=[list(r)
                              for r in data.get("resources", [])],
                   releases=[list(r)
                             for r in data.get("releases", [])],
                   pins=[list(p) for p in data.get("pins", [])],
                   patches=[list(p) for p in data.get("patches", [])],
                   binds=[list(b) for b in data.get("binds", [])],
                   views=[list(v) for v in data.get("views", [])],
                   flips=[list(f) for f in data.get("flips", [])],
                   returns=[list(r) for r in data.get("returns", [])],
                   skeleton=data.get("skeleton", []))


@dataclass
class ModuleSummary:
    """Per-module slice of the program: functions, classes, imports."""

    module: str
    relpath: str
    modules_map: Dict[str, str] = field(default_factory=dict)
    names_map: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: class name -> resolved (dotted where possible) base names.
    classes: Dict[str, List[str]] = field(default_factory=dict)
    module_level_names: List[str] = field(default_factory=list)

    def to_dict(self):
        return {"module": self.module, "relpath": self.relpath,
                "modules_map": self.modules_map,
                "names_map": self.names_map,
                "functions": {q: f.to_dict()
                              for q, f in self.functions.items()},
                "classes": self.classes,
                "module_level_names": self.module_level_names}

    @classmethod
    def from_dict(cls, data):
        return cls(module=data["module"], relpath=data["relpath"],
                   modules_map=dict(data["modules_map"]),
                   names_map=dict(data["names_map"]),
                   functions={q: FunctionSummary.from_dict(f)
                              for q, f in data["functions"].items()},
                   classes={k: list(v)
                            for k, v in data["classes"].items()},
                   module_level_names=list(
                       data["module_level_names"]))


def module_name_for(relpath: str) -> str:
    """Dotted module name of a repo-relative path (``src/`` stripped)."""
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part) or "<root>"


def _local_names(fn: ast.AST) -> Set[str]:
    """Names bound inside ``fn``'s own scope (nested defs excluded)."""
    names: Set[str] = set()
    globals_decl: Set[str] = set()

    def collect_target(target):
        # Only *binding* positions introduce locals: a subscript or
        # attribute store mutates an existing object instead.
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect_target(element)
        elif isinstance(target, ast.Starred):
            collect_target(target.value)

    def visit(node, top=False):
        if not top and isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef,
                                         ast.Lambda)):
            if not isinstance(node, ast.Lambda):
                names.add(node.name)
            return
        if isinstance(node, ast.Global):
            globals_decl.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                collect_target(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            collect_target(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    collect_target(item.optional_vars)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                names.add(local)
        elif isinstance(node, ast.comprehension):
            collect_target(node.target)
        elif isinstance(node, (ast.NamedExpr,)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(fn, top=True)
    return names - globals_decl


def _own_nodes(fn: ast.AST):
    """Walk ``fn`` without descending into nested function bodies."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop(0)
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _FunctionScanner:
    """Extracts one :class:`FunctionSummary` from a function body."""

    def __init__(self, module: "ModuleSummary", qualname: str,
                 fn: ast.AST, params: Sequence[str]):
        self.module = module
        self.fn = fn
        self.summary = FunctionSummary(
            qualname=qualname, params=list(params),
            line=getattr(fn, "lineno", 0),
            col=getattr(fn, "col_offset", 0))
        self.locals = _local_names(fn) | set(params)
        self.globals_decl = {name for node in _own_nodes(fn)
                             if isinstance(node, ast.Global)
                             for name in node.names}
        self.aliases = self._alias_map(params)
        self.env = self._assignment_env()
        self.nested = {node.name for node in _own_nodes(fn)
                       if isinstance(node, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))}
        self.bind_of = self._bind_targets()
        self._with_calls, self._with_vars = self._with_contexts()
        self._final_ids = self._finally_ids()

    def _bind_targets(self) -> Dict[int, str]:
        """id(call) -> assignment target consuming the call's result."""
        binds: Dict[int, str] = {}
        for node in _own_nodes(self.fn):
            if not isinstance(node, ast.Assign) \
                    or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name):
                name = f"{target.value.id}.{target.attr}"
            else:
                continue
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Call):
                    binds[id(sub)] = name
        return binds

    def _with_contexts(self):
        """With-managed context calls: auto-released acquisitions."""
        calls, variables = set(), {}
        for node in _own_nodes(self.fn):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                if not isinstance(item.context_expr, ast.Call):
                    continue
                calls.add(id(item.context_expr))
                if isinstance(item.optional_vars, ast.Name):
                    variables[id(item.context_expr)] = \
                        item.optional_vars.id
        return calls, variables

    def _finally_ids(self) -> Set[int]:
        """ids of every node living inside some ``finally`` suite."""
        ids: Set[int] = set()
        for node in _own_nodes(self.fn):
            if isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    ids.update(id(sub) for sub in ast.walk(stmt))
        return ids

    # -- aliasing -----------------------------------------------------------

    def _alias_map(self, params: Sequence[str]) -> Dict[str, str]:
        """name -> parameter it may alias (params, plain/view copies)."""
        aliases = {p: p for p in params}
        changed = True
        while changed:
            changed = False
            for node in _own_nodes(self.fn):
                if not isinstance(node, ast.Assign) \
                        or len(node.targets) != 1 \
                        or not isinstance(node.targets[0], ast.Name):
                    continue
                value = node.value
                if not isinstance(value, (ast.Name, ast.Subscript,
                                          ast.Attribute)):
                    continue
                base = base_name(value)
                target = node.targets[0].id
                if base in aliases and target not in aliases:
                    aliases[target] = aliases[base]
                    changed = True
        return aliases

    def param_alias(self, node: ast.AST) -> Optional[str]:
        base = base_name(node)
        if base is None:
            return None
        return self.aliases.get(base)

    # -- seed provenance ----------------------------------------------------

    def _assignment_env(self) -> Dict[str, List[ast.AST]]:
        env: Dict[str, List[ast.AST]] = {}
        for node in _own_nodes(self.fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                env.setdefault(node.targets[0].id, []).append(node.value)
        return env

    def seed_class(self, expr: ast.AST, depth: int = 0) -> str:
        """``const`` / ``seedlike`` / ``param:<name>`` / ``opaque``."""
        if depth > 6:
            return "opaque"
        if isinstance(expr, ast.Constant):
            return "opaque" if expr.value is None else "const"
        if isinstance(expr, ast.Name):
            if is_seed_name(expr.id):
                return "seedlike"
            if expr.id in self.summary.params:
                return f"param:{expr.id}"
            if expr.id in self.env:
                return self._meet([self.seed_class(v, depth + 1)
                                   for v in self.env[expr.id]])
            return "opaque"
        if isinstance(expr, ast.Attribute):
            return "seedlike" if is_seed_name(expr.attr) else "opaque"
        if isinstance(expr, ast.Call):
            func = expr.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else "")
            if is_seed_name(name):
                return "seedlike"
            if name in _SEED_TRANSPARENT_CALLS and len(expr.args) == 1:
                return self.seed_class(expr.args[0], depth + 1)
            return "opaque"
        if isinstance(expr, ast.BinOp):
            return self._meet([self.seed_class(expr.left, depth + 1),
                               self.seed_class(expr.right, depth + 1)])
        if isinstance(expr, ast.UnaryOp):
            return self.seed_class(expr.operand, depth + 1)
        if isinstance(expr, ast.IfExp):
            return self._meet([self.seed_class(expr.body, depth + 1),
                               self.seed_class(expr.orelse, depth + 1)])
        if isinstance(expr, ast.Subscript):
            return self.seed_class(expr.value, depth + 1)
        if isinstance(expr, ast.Tuple):
            return self._meet([self.seed_class(e, depth + 1)
                               for e in expr.elts])
        return "opaque"

    @staticmethod
    def _meet(classes: List[str]) -> str:
        if not classes or "opaque" in classes:
            return "opaque"
        for cls in classes:
            if cls.startswith("param:"):
                return cls
        if "seedlike" in classes:
            return "seedlike"
        return "const"

    # -- per-node extraction ------------------------------------------------

    def arg_info(self, expr: ast.AST) -> ArgInfo:
        info = ArgInfo(alias=self.param_alias(expr),
                       seed=self.seed_class(expr),
                       base=attr_path(expr))
        if isinstance(expr, ast.Lambda):
            info.is_lambda = True
        elif isinstance(expr, ast.Name):
            info.callable_ref = ("name", expr.id)
        elif isinstance(expr, ast.Attribute):
            dotted = _canonical_call(expr, self.module.modules_map,
                                     self.module.names_map)
            if dotted is not None:
                info.callable_ref = ("dotted", dotted)
        return info

    def record_mutation(self, target: ast.AST, kind: str, detail: str,
                        node: ast.AST) -> None:
        param = self.param_alias(target)
        if param is not None:
            self.summary.mutations.append(
                [param, kind, detail, node.lineno, node.col_offset])

    def record_global_write(self, target: ast.AST, node: ast.AST,
                            mutation: bool = True) -> None:
        """Record a write through a non-local name.

        ``mutation=False`` marks a *binding* store (``X = v``): a bare
        name there is a local unless ``global``-declared; any mutation
        (subscript store, ``.append``, ``np.add.at``) through a
        module-level or imported name is a module-state write.
        """
        base = base_name(target)
        if base is None:
            return
        if isinstance(target, ast.Name) and not mutation:
            if base in self.globals_decl:
                self.summary.global_writes.append(
                    [base, node.lineno, node.col_offset])
            return
        if base in self.locals and base not in self.globals_decl:
            return
        if base in self.globals_decl \
                or base in self.module.module_level_names \
                or base in self.module.names_map \
                or base in self.module.modules_map:
            self.summary.global_writes.append(
                [base, node.lineno, node.col_offset])

    def scan(self) -> FunctionSummary:
        modules_map = self.module.modules_map
        names_map = self.module.names_map
        for node in _own_nodes(self.fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._scan_store(target, node, aug=False)
            elif isinstance(node, ast.AugAssign):
                self._scan_store(node.target, node, aug=True)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        self.record_mutation(target, "del",
                                             "del of a subscript", node)
                        self.record_global_write(target, node)
            elif isinstance(node, ast.Call):
                self._scan_call(node, modules_map, names_map)
        self._scan_rng(modules_map, names_map)
        self._scan_resources()
        return self.summary

    def _scan_store(self, target: ast.AST, node: ast.AST,
                    aug: bool) -> None:
        if isinstance(target, ast.Subscript):
            kind = "aug-subscript-store" if aug else "subscript-store"
            self.record_mutation(target, kind,
                                 "in-place subscript store", node)
            self.record_global_write(target, node)
        elif aug and isinstance(target, ast.Name):
            # ``x += ...`` on an array parameter mutates in place.
            self.record_mutation(target, "aug-assign",
                                 "augmented assignment", node)
            self.record_global_write(target, node, mutation=False)
        elif isinstance(target, ast.Name):
            self.record_global_write(target, node, mutation=False)
        elif isinstance(target, ast.Attribute):
            # ``mod.state = ...`` through an imported module.
            base = base_name(target)
            if base is not None and base not in self.locals \
                    and base in self.module.modules_map:
                self.record_global_write(target, node)

    def _scan_call(self, node: ast.Call, modules_map,
                   names_map) -> None:
        func = node.func
        dotted = _canonical_call(func, modules_map, names_map)

        # Wall-clock / environment reads.
        if dotted is not None and (dotted in CLOCK_CALLS or any(
                dotted.startswith(p) for p in CLOCK_CALL_PREFIXES)):
            self.summary.clock_reads.append(
                [dotted, node.lineno, node.col_offset])

        # ``np.<ufunc>.at(target, ...)`` scatters mutate arg 0.
        if dotted is not None and dotted.startswith("numpy.") \
                and dotted.endswith(".at") and node.args:
            self.record_mutation(node.args[0], "ufunc-at",
                                 f"{dotted}(...)", node)
            self.record_global_write(node.args[0], node)

        # ``out=`` keyword targets are written in place.
        for keyword in node.keywords:
            if keyword.arg == "out" and keyword.value is not None:
                self.record_mutation(keyword.value, "out-kwarg",
                                     "out= target", node)
                self.record_global_write(keyword.value, node)

        # Mutating method calls on a receiver chain.
        if isinstance(func, ast.Attribute) \
                and func.attr in ARRAY_MUTATING_METHODS:
            self.record_mutation(func.value, "mutating-method",
                                 f".{func.attr}(...)", node)
            self.record_global_write(func.value, node)

        # ``pool.submit(payload, ...)`` worker entry points.
        if isinstance(func, ast.Attribute) and func.attr == "submit" \
                and node.args:
            self._record_payload(node.args[0], node)

        # ``initializer=`` payloads run inside every worker process
        # before any task — treat them exactly like submitted payloads.
        for keyword in node.keywords:
            if keyword.arg == "initializer" \
                    and keyword.value is not None:
                self._record_payload(keyword.value, node)

        # The call site itself, for graph edges.
        target = self._target_spec(func, modules_map, names_map)
        if target is not None:
            site = CallSite(target=target, line=node.lineno,
                            col=node.col_offset,
                            args=[self.arg_info(a) for a in node.args
                                  if not isinstance(a, ast.Starred)],
                            kwargs={k.arg: self.arg_info(k.value)
                                    for k in node.keywords
                                    if k.arg is not None})
            if target[0] == "method":
                site.recv_alias = self.param_alias(func.value)
            site.bind = self.bind_of.get(id(node))
            self.summary.calls.append(site)

    def _record_payload(self, payload: ast.AST,
                        node: ast.Call) -> None:
        line, col = node.lineno, node.col_offset
        if isinstance(payload, ast.Lambda):
            self.summary.submits.append(["lambda", "<lambda>", line,
                                         col])
        elif isinstance(payload, ast.Name):
            kind = "nested" if payload.id in self.nested else "name"
            self.summary.submits.append([kind, payload.id, line, col])
        elif isinstance(payload, ast.Attribute):
            dotted = _canonical_call(payload, self.module.modules_map,
                                     self.module.names_map)
            if dotted is not None:
                self.summary.submits.append(["dotted", dotted, line,
                                             col])

    @staticmethod
    def _target_spec(func: ast.AST, modules_map,
                     names_map) -> Optional[Tuple[str, ...]]:
        if isinstance(func, ast.Name):
            return ("name", func.id)
        if isinstance(func, ast.Attribute):
            dotted = _canonical_call(func, modules_map, names_map)
            if dotted is not None:
                return ("dotted", dotted)
            base = base_name(func.value)
            return ("method", base or "", func.attr)
        return None

    # -- resource lifetime / shared-buffer events (REP010-REP012) -----------

    def _resource_kind(self, node: ast.Call) -> Optional[str]:
        dotted = _canonical_call(node.func, self.module.modules_map,
                                 self.module.names_map)
        if dotted in RESOURCE_CTORS:
            return RESOURCE_CTORS[dotted]
        if isinstance(node.func, ast.Name) and node.func.id == "open" \
                and "open" not in self.module.names_map \
                and "open" not in self.env:
            return "open"
        return None

    def _scan_resources(self) -> None:
        """Resource events + the control skeleton, in one sweep.

        Builds per-call/per-statement op fragments first (acquire,
        release, pin, bind, escape), then threads them through the
        function's statement structure into ``summary.skeleton`` so
        the dataflow interpreter can prove all-paths release.
        """
        mm, nm = self.module.modules_map, self.module.names_map
        call_ops: Dict[int, List[List]] = {}
        stmt_ops: Dict[int, List[List]] = {}
        acq_kinds: Dict[str, str] = {}
        calls = [node for node in _own_nodes(self.fn)
                 if isinstance(node, ast.Call)]

        # Acquisitions and releases.
        for node in calls:
            ops = call_ops.setdefault(id(node), [])
            line, col = node.lineno, node.col_offset
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in RELEASE_METHODS:
                    base = attr_path(func.value)
                    if base is not None:
                        self.summary.releases.append([base, line])
                        ops.append(["rel", base, line])
                if func.attr in RELEASE_ARG_CALLS and node.args \
                        and isinstance(node.args[0], ast.Name):
                    self.summary.releases.append(
                        [node.args[0].id, line])
                    ops.append(["rel", node.args[0].id, line])
            kind = self._resource_kind(node)
            if kind is not None:
                managed = id(node) in self._with_calls
                var = self._with_vars.get(id(node)) \
                    or self.bind_of.get(id(node))
                owner = any(kw.arg == "create"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                            for kw in node.keywords)
                self.summary.resources.append(
                    [kind, var, line, col, owner, managed])
                ops.append(["acq", var, kind, line, col, owner,
                            managed])
                if var is not None and not managed:
                    acq_kinds[var] = kind
            var = self.bind_of.get(id(node))
            if var is not None:
                ops.append(["bind", var, line])

        # Shared-buffer views (``np.ndarray(..., buffer=shm.buf)``).
        for node in calls:
            dotted = _canonical_call(node.func, mm, nm)
            if dotted not in VIEW_CTORS:
                continue
            buf = None
            for kw in node.keywords:
                if kw.arg == "buffer":
                    buf = kw.value
            if buf is None and node.args:
                if dotted.endswith("frombuffer"):
                    buf = node.args[0]
                elif len(node.args) >= 3:
                    buf = node.args[2]
            path = attr_path(buf) if buf is not None else None
            if path is None:
                continue
            if path.endswith(".buf"):
                handle = path[:-len(".buf")]
            elif acq_kinds.get(path) == "mmap":
                handle = path
            else:
                continue
            var = self.bind_of.get(id(node))
            if var is not None:
                self.summary.views.append(
                    [var, handle, node.lineno, node.col_offset,
                     False, []])

        # Statement-level events: pins, patches, writeability, stores.
        readonly: Set[str] = set()
        stored: Set[str] = set()
        arg_names: Set[str] = set()
        yield_names: Set[str] = set()
        raw_patches: List[Tuple[str, int, int, bool]] = []
        for node in _own_nodes(self.fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Subscript):
                    if isinstance(target.value, ast.Name) \
                            and target.value.id \
                            in self.module.module_level_names \
                            and isinstance(node.value, ast.Name):
                        self.summary.pins.append(
                            [node.value.id, target.value.id,
                             node.lineno])
                        stmt_ops.setdefault(id(node), []).append(
                            ["pin", node.value.id, node.lineno])
                    elif isinstance(node.value, ast.Name):
                        stored.add(node.value.id)
                elif isinstance(target, ast.Attribute):
                    if target.attr == "writeable" \
                            and isinstance(target.value,
                                           ast.Attribute) \
                            and target.value.attr == "flags":
                        base = attr_path(target.value.value)
                        if base is not None:
                            if isinstance(node.value, ast.Constant) \
                                    and node.value.value is False:
                                readonly.add(base)
                            else:
                                self.summary.flips.append(
                                    [base, node.lineno,
                                     node.col_offset])
                        continue
                    base = base_name(target)
                    if base is not None \
                            and base not in self.summary.params \
                            and (base in nm or base in mm):
                        path = attr_path(target)
                        if path is not None:
                            raw_patches.append(
                                (path, node.lineno, node.col_offset,
                                 id(node) in self._final_ids))
                    if isinstance(node.value, ast.Name):
                        stored.add(node.value.id)
            elif isinstance(node, ast.Assign):
                # ``shm = self._shm`` style reads feed REP010's handle
                # provenance; multi-target assigns are not tracked.
                pass
            elif isinstance(node, ast.Return) \
                    and node.value is not None:
                names = sorted({sub.id
                                for sub in ast.walk(node.value)
                                if isinstance(sub, ast.Name)})
                self.summary.returns.append([names, node.lineno])
            elif isinstance(node, (ast.Yield, ast.YieldFrom)) \
                    and node.value is not None:
                yield_names.update(
                    sub.id for sub in ast.walk(node.value)
                    if isinstance(sub, ast.Name))
            elif isinstance(node, ast.Call):
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        arg_names.add(arg.id)
                for kw in node.keywords:
                    if isinstance(kw.value, ast.Name):
                        arg_names.add(kw.value.id)

        # Plain attribute reads into locals: handle provenance.
        for node in _own_nodes(self.fn):
            if isinstance(node, ast.Assign) \
                    and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.Attribute):
                path = attr_path(node.value)
                if path is not None:
                    self.summary.binds.append(
                        [node.targets[0].id, path, node.lineno])

        final_targets = {path for path, _l, _c, fin in raw_patches
                         if fin}
        for path, line, col, fin in raw_patches:
            if not fin:
                self.summary.patches.append(
                    [path, line, col, path in final_targets])

        # View escape classification.
        return_names = {name for names, _line in self.summary.returns
                        for name in names}
        for view in self.summary.views:
            var = view[0]
            view[4] = var in readonly
            if var in return_names:
                view[5].append("return")
            if var in stored:
                view[5].append("store")
            if var in arg_names:
                view[5].append("arg")
            if var in yield_names:
                view[5].append("yield")

        # Escape ops: tracked handles passed as bare call arguments.
        tracked = set(acq_kinds) | set(self.bind_of.values())
        for node in calls:
            for arg in list(node.args) + [kw.value
                                          for kw in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id in tracked:
                    call_ops.setdefault(id(node), []).append(
                        ["esc", arg.id, node.lineno])

        self.summary.skeleton = self._skeleton_of(
            list(getattr(self.fn, "body", [])), call_ops, stmt_ops)

    def _expr_ops(self, node: Optional[ast.AST],
                  call_ops: Dict[int, List[List]]) -> List[List]:
        if node is None:
            return []
        found = [sub for sub in ast.walk(node)
                 if isinstance(sub, ast.Call)
                 and call_ops.get(id(sub))]
        found.sort(key=lambda c: (c.lineno, c.col_offset))
        ops: List[List] = []
        for sub in found:
            ops.extend(call_ops[id(sub)])
        return ops

    def _skeleton_of(self, body: List[ast.AST],
                     call_ops: Dict[int, List[List]],
                     stmt_ops: Dict[int, List[List]]) -> List[List]:
        """Statement structure as nested serializable ops."""
        ops: List[List] = []
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If):
                ops.extend(self._expr_ops(stmt.test, call_ops))
                ops.append(["if",
                            self._skeleton_of(stmt.body, call_ops,
                                              stmt_ops),
                            self._skeleton_of(stmt.orelse, call_ops,
                                              stmt_ops)])
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                ops.extend(self._expr_ops(stmt.iter, call_ops))
                ops.append(["loop",
                            self._skeleton_of(stmt.body, call_ops,
                                              stmt_ops)])
                ops.extend(self._skeleton_of(stmt.orelse, call_ops,
                                             stmt_ops))
            elif isinstance(stmt, ast.While):
                ops.extend(self._expr_ops(stmt.test, call_ops))
                ops.append(["loop",
                            self._skeleton_of(stmt.body, call_ops,
                                              stmt_ops)])
                ops.extend(self._skeleton_of(stmt.orelse, call_ops,
                                             stmt_ops))
            elif isinstance(stmt, ast.Try):
                # Handlers are exception paths; the must-release
                # analysis only audits the non-exception route
                # (body -> orelse -> finally).
                ops.append(["try",
                            self._skeleton_of(stmt.body, call_ops,
                                              stmt_ops),
                            self._skeleton_of(stmt.orelse, call_ops,
                                              stmt_ops),
                            self._skeleton_of(stmt.finalbody, call_ops,
                                              stmt_ops)])
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    ops.extend(self._expr_ops(item.context_expr,
                                              call_ops))
                ops.extend(self._skeleton_of(stmt.body, call_ops,
                                             stmt_ops))
            elif isinstance(stmt, ast.Return):
                names: List[str] = []
                if stmt.value is not None:
                    names = sorted({sub.id
                                    for sub in ast.walk(stmt.value)
                                    if isinstance(sub, ast.Name)})
                for op in self._expr_ops(stmt.value, call_ops):
                    if op[0] == "acq" and op[1] is None:
                        # ``return SharedMemory(...)``: ownership
                        # transfers to the caller, not a leak.
                        ops.append(["acqret", op[2], op[3]])
                    else:
                        ops.append(op)
                ops.append(["ret", names, stmt.lineno])
            elif isinstance(stmt, ast.Raise):
                ops.extend(self._expr_ops(stmt.exc, call_ops))
                ops.append(["raise"])
            else:
                ops.extend(self._expr_ops(stmt, call_ops))
                ops.extend(stmt_ops.get(id(stmt), []))
        return ops

    def _scan_rng(self, modules_map, names_map) -> None:
        # RNGs constructed in default-argument expressions are shared
        # across every call of the function — always a finding.
        default_ids = set()
        args = getattr(self.fn, "args", None)
        if args is not None:
            for default in list(args.defaults) + list(args.kw_defaults):
                if default is None:
                    continue
                default_ids.update(id(sub) for sub in ast.walk(default))
        for node in _own_nodes(self.fn):
            if not isinstance(node, ast.Call):
                continue
            ctor = self._rng_ctor(node, modules_map, names_map)
            if ctor is None:
                continue
            if not node.args and not node.keywords:
                seed = "unseeded"
            else:
                arg = node.args[0] if node.args \
                    else node.keywords[0].value
                seed = self.seed_class(arg)
            context = "call"
            if id(node) in default_ids:
                context = "default"
            else:
                stored = self._stored_global_name(node)
                if stored is not None:
                    context = f"global:{stored}"
            self.summary.rng.append(
                [ctor, seed, node.lineno, node.col_offset, context])

    def _stored_global_name(self, ctor_node: ast.Call) -> Optional[str]:
        """Module-level name the RNG is stored into, if any."""
        if self.summary.qualname != "<module>":
            return None
        for node in _own_nodes(self.fn):
            if isinstance(node, ast.Assign) \
                    and any(sub is ctor_node
                            for sub in ast.walk(node.value)):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        return target.id
        return None

    @staticmethod
    def _rng_ctor(node: ast.AST, modules_map,
                  names_map) -> Optional[str]:
        if not isinstance(node, ast.Call):
            return None
        dotted = _canonical_call(node.func, modules_map, names_map)
        return dotted if dotted in RNG_CTORS else None


def _params_of(fn) -> List[str]:
    args = fn.args
    params = [a.arg for a in args.posonlyargs + args.args
              + args.kwonlyargs]
    if args.vararg is not None:
        params.append(args.vararg.arg)
    if args.kwarg is not None:
        params.append(args.kwarg.arg)
    return params


def _resolve_base(expr: ast.AST, modules_map, names_map) -> str:
    """Dotted (where resolvable) name of one class-base expression."""
    if isinstance(expr, ast.Name):
        return names_map.get(expr.id, expr.id)
    if isinstance(expr, ast.Attribute):
        dotted = _canonical_call(expr, modules_map, names_map)
        return dotted if dotted is not None else expr.attr
    if isinstance(expr, ast.Subscript):
        return _resolve_base(expr.value, modules_map, names_map)
    return ""


def _absolutize_relative_imports(tree: ast.Module, relpath: str,
                                 module: str, names_map: Dict[str, str]
                                 ) -> None:
    """Rewrite ``from .x import y`` bindings to absolute dotted names.

    :func:`~tools.analyze.visitors._import_maps` records relative
    imports without their anchor package; the module name (known here)
    supplies it, so cross-file edges inside a package resolve.
    """
    if module == "<root>":
        return
    parts = module.split(".")
    package = parts if relpath.endswith("__init__.py") else parts[:-1]
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom) or not node.level:
            continue
        anchor = package[:len(package) - (node.level - 1)] \
            if node.level > 1 else package
        if not anchor:
            continue
        prefix = ".".join(anchor)
        if node.module:
            prefix = f"{prefix}.{node.module}"
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            names_map[local] = f"{prefix}.{alias.name}"


def summarize_module(tree: ast.Module, relpath: str,
                     module: Optional[str] = None) -> ModuleSummary:
    """Summarize one parsed file into its interprocedural atoms."""
    modules_map, names_map = _import_maps(tree)
    module = module if module is not None else module_name_for(relpath)
    _absolutize_relative_imports(tree, relpath, module, names_map)
    summary = ModuleSummary(
        module=module,
        relpath=relpath, modules_map=modules_map, names_map=names_map)

    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    summary.module_level_names.append(target.id)
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            summary.module_level_names.append(node.target.id)

    def add_function(fn, qualname):
        scanner = _FunctionScanner(summary, qualname, fn,
                                   _params_of(fn))
        summary.functions[qualname] = scanner.scan()
        for child in _own_nodes(fn):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                add_function(child,
                             f"{qualname}.<locals>.{child.name}")

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(node, node.name)
        elif isinstance(node, ast.ClassDef):
            summary.classes[node.name] = [
                _resolve_base(b, modules_map, names_map)
                for b in node.bases]
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    add_function(item, f"{node.name}.{item.name}")

    # Module-level statements run at import time; summarize them as a
    # pseudo-function so module-global RNG stores are visible.
    module_body = ast.Module(
        body=[stmt for stmt in tree.body
              if not isinstance(stmt, (ast.FunctionDef,
                                       ast.AsyncFunctionDef,
                                       ast.ClassDef))],
        type_ignores=[])
    scanner = _FunctionScanner(summary, "<module>", module_body, [])
    summary.functions["<module>"] = scanner.scan()
    return summary
