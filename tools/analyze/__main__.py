"""``python -m tools.analyze`` entry point."""

from tools.analyze.driver import main

if __name__ == "__main__":
    raise SystemExit(main())
