#!/usr/bin/env python
"""Print the top-N spans from a trace artifact.

Accepts both trace formats the repo's sinks write:

* Chrome trace-event JSON (``--trace out.json`` / ``TRACE_smoke.json``):
  duration (``ph: "X"``) events are aggregated by span name;
* the JSONL event log (``write_jsonl``): ``kind: "span"`` rows ditto.

Usage::

    python tools/trace_summary.py benchmarks/artifacts/TRACE_smoke.json
    python tools/trace_summary.py trace.json --top 10
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Iterable, Tuple

# (seconds, count, max_seconds, pids)
Agg = Dict[str, Tuple[float, int, float, set]]


def _spans_from_chrome(doc: dict) -> Iterable[Tuple[str, float, int]]:
    for event in doc.get("traceEvents", []):
        if event.get("ph") == "X":
            yield (event["name"], float(event.get("dur", 0.0)) / 1e6,
                   event.get("pid", 0))


def _spans_from_jsonl(lines: Iterable[str]) -> Iterable[Tuple[str, float, int]]:
    for line in lines:
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        if row.get("kind") == "span":
            yield row["name"], float(row.get("seconds", 0.0)), row.get("pid", 0)


def load_spans(path: str) -> Iterable[Tuple[str, float, int]]:
    with open(path) as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        return list(_spans_from_jsonl(text.splitlines()))
    if isinstance(doc, dict) and "traceEvents" in doc:
        return list(_spans_from_chrome(doc))
    raise SystemExit(f"{path}: not a Chrome trace or repro JSONL trace")


def summarize(spans: Iterable[Tuple[str, float, int]]) -> Agg:
    agg: Agg = {}
    for name, seconds, pid in spans:
        total, count, peak, pids = agg.get(name, (0.0, 0, 0.0, set()))
        pids.add(pid)
        agg[name] = (total + seconds, count + 1, max(peak, seconds), pids)
    return agg


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace JSON or JSONL path")
    parser.add_argument("--top", type=int, default=15,
                        help="rows to print (default 15)")
    args = parser.parse_args(argv)

    agg = summarize(load_spans(args.trace))
    if not agg:
        print(f"{args.trace}: no spans")
        return 1
    print(f"{'total s':>9} {'count':>6} {'max s':>9} {'procs':>5}  span")
    ranked = sorted(agg.items(), key=lambda kv: -kv[1][0])
    for name, (total, count, peak, pids) in ranked[:args.top]:
        print(f"{total:9.3f} {count:6d} {peak:9.3f} {len(pids):5d}  {name}")
    if len(ranked) > args.top:
        print(f"... {len(ranked) - args.top} more span name(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
