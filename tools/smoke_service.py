#!/usr/bin/env python
"""Placement-service smoke: warm store, 2-worker pool, submit/poll.

End-to-end check of the service layer that ``make check`` runs on
every build:

1. a cold 2-worker ``run_suite`` against a fresh compiled-design
   store (compiles + persists every design in the main process);
2. a second, traced 2-worker run against the now-warm store —
   asserting the workers record **zero** ``prepare.*`` compile spans
   (they attach shared memory instead) and the main process saw only
   store hits;
3. a ``PlacementService`` submit/poll round-trip over the same store,
   asserting the job lifecycle (queued → done) and that the rows are
   bit-identical to the suite's.

Exits non-zero with a named assertion on any violation.
"""

from __future__ import annotations

import sys
import tempfile

from repro.api import (
    PlacementService,
    RunOptions,
    normalize_to_handfp,
    run_suite,
)
from repro.core.config import Effort
from repro.obs import iter_spans
from repro.service import JobStatus

DESIGNS = ("c1", "c2")
FLOWS = ("indeda", "handfp-strip")


def _key_rows(rows):
    return [(r.design, r.flow, r.wl_meters, r.grc_percent,
             r.wns_percent, r.tns, r.wl_norm) for r in rows]


def main() -> int:
    opts = RunOptions(seed=1, effort=Effort.FAST)
    trace_opts = RunOptions(seed=1, effort=Effort.FAST, trace=True)
    with tempfile.TemporaryDirectory(prefix="hidap-smoke-store-") \
            as store_dir:
        print(f"cold 2-worker suite (populating store {store_dir})")
        cold = run_suite(scale="tiny", designs=list(DESIGNS),
                         flows=FLOWS, options=opts, workers=2,
                         store=store_dir)

        print("warm 2-worker suite (traced)")
        warm = run_suite(scale="tiny", designs=list(DESIGNS),
                         flows=FLOWS, options=trace_opts, workers=2,
                         store=store_dir)
        assert _key_rows(warm.rows) == _key_rows(cold.rows), \
            "warm-store rows differ from cold-store rows"

        worker_names = {span["name"]
                        for payload in warm.trace[1:]
                        for _depth, span in iter_spans(payload)}
        compile_spans = sorted(n for n in worker_names
                               if n.startswith("prepare."))
        assert not compile_spans, (
            f"warm-store workers must compile nothing, saw "
            f"{compile_spans}")
        assert "store.attach" in worker_names, \
            "warm-store workers must attach shared memory"
        main_names = {span["name"]
                      for _depth, span in iter_spans(warm.trace[0])}
        assert "store.hit" in main_names, \
            "warm run must hit the store"
        assert "store.miss" not in main_names, \
            "warm run must not miss the store"
        print(f"  workers attached shm; zero prepare.* spans "
              f"({len(worker_names)} distinct worker span names)")

        print("submit/poll round-trip via PlacementService")
        with PlacementService(scale="tiny", designs=DESIGNS,
                              store=store_dir, workers=2,
                              options=opts) as service:
            handles = [service.submit(design, flow)
                       for design in DESIGNS for flow in FLOWS]
            rows = [handle.result() for handle in handles]
            for handle in handles:
                assert handle.poll() is JobStatus.DONE, \
                    f"{handle.design}/{handle.flow} not DONE"
        normalize_to_handfp(rows)
        assert _key_rows(rows) == _key_rows(cold.rows), \
            "PlacementService rows differ from run_suite rows"

    print(f"PASS: {len(cold.rows)} rows bit-identical across "
          f"cold store, warm store, and submit/poll; warm workers "
          f"compiled nothing")
    return 0


if __name__ == "__main__":
    sys.exit(main())
