"""Repo tooling: the lint gate and the repro-analyze static analyzer."""
