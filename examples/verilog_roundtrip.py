#!/usr/bin/env python
"""Export a generated design to structural Verilog and re-import it.

Shows the textual interchange path: a design generated (or built by
hand) can be written as a structural Verilog subset, inspected or
edited, parsed back with a cell library, and placed — ending at the
same floorplan.  Placement goes through the flow registry: wrap the
parsed design in a ``PreparedDesign`` and hand it to any flow.

Run:  python examples/verilog_roundtrip.py
"""

from repro import build_design, die_for, suite_specs
from repro.api import Effort, PreparedDesign, get_flow
from repro.netlist.stats import design_stats
from repro.netlist.verilog import design_to_verilog, parse_verilog


def main() -> None:
    spec = suite_specs("tiny")[0]
    design, _truth = build_design(spec)
    text = design_to_verilog(design)
    with open("c1.v", "w") as handle:
        handle.write(text)
    print(f"wrote c1.v ({len(text.splitlines())} lines, "
          f"{text.count('module ')} modules)")
    print("\nfirst lines:")
    for line in text.splitlines()[:8]:
        print("  " + line)

    # Re-import: leaf cells resolve through the design's own library.
    library = design.cell_types()
    parsed = parse_verilog(text, library, "c1_reparsed")
    print("\nreparsed:", design_stats(parsed).summary())
    assert design_stats(parsed).cells == design_stats(design).cells

    # The same netlist places to the same macro count and die.
    die_w, die_h = die_for(parsed)
    prepared = PreparedDesign(design=parsed, die_w=die_w, die_h=die_h)
    placement = get_flow("hidap", seed=1, effort=Effort.FAST).place(
        prepared)
    print(placement.summary())


if __name__ == "__main__":
    main()
