#!/usr/bin/env python
"""Compare the three flows of the paper on one circuit.

Reproduces one row-group of Table III: IndEDA (commercial-tool
stand-in), HiDaP (best WL of three λ) and handFP (expert oracle), all
measured by the same referee: standard-cell placement, bit-level HPWL,
probabilistic-routing congestion and Gseq STA.

Every flow comes out of the registry, and all three share one
``PreparedDesign`` — the flattened netlist and Gnet/Gseq graphs are
built once, not once per flow.

Run:  python examples/compare_flows.py [circuit] [scale]
"""

import sys

from repro.api import (
    Effort,
    get_flow,
    normalize_to_handfp,
    prepare_suite_design,
)


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "c1"
    scale = sys.argv[2] if len(sys.argv) > 2 else "tiny"
    prepared = prepare_suite_design(circuit, scale)
    print(f"{circuit} at scale {scale}: {prepared.info()}, "
          f"die {prepared.die_w} x {prepared.die_h}")

    rows = []
    for spec in ("indeda", "hidap-best3", "handfp"):
        flow = get_flow(spec, seed=1, effort=Effort.FAST)
        metrics = flow.evaluate(prepared)
        rows.append(metrics)
        print(f"  finished {metrics.flow} "
              f"({metrics.placer_seconds:.1f}s placer time)")
    normalize_to_handfp(rows)

    print(f"\n{'flow':8s} {'WL(m)':>8s} {'norm':>6s} {'GRC%':>7s} "
          f"{'WNS%':>7s} {'TNS':>9s}")
    for row in rows:
        print(f"{row.flow:8s} {row.wl_meters:8.3f} {row.wl_norm:6.3f} "
              f"{row.grc_percent:7.2f} {row.wns_percent:+7.1f} "
              f"{row.tns:9.1f}")


if __name__ == "__main__":
    main()
