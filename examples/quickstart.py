#!/usr/bin/env python
"""Quickstart: generate a design, place its macros, look at the result.

Run:  python examples/quickstart.py
"""

from repro import HiDaP, HiDaPConfig, build_design, die_for, suite_specs
from repro.viz.ascii_art import ascii_floorplan
from repro.viz.svg import svg_floorplan


def main() -> None:
    # 1. A design with RTL hierarchy and array information.  The suite
    #    generator mirrors the paper's industrial circuits; c1 is the
    #    smallest (32 macros).
    spec = suite_specs("tiny")[0]
    design, _ground_truth = build_design(spec)
    die_w, die_h = die_for(design, utilization=0.55)
    print(f"design {design.name}: die {die_w} x {die_h}")

    # 2. Place the macros with HiDaP.  λ blends block flow (physical
    #    nets) against macro flow (global dataflow); 0.5 is the middle
    #    of the paper's sweep.
    placer = HiDaP(HiDaPConfig(seed=1, lam=0.5))
    placement = placer.place(design, die_w, die_h)
    print(placement.summary())

    # 3. Inspect: every macro has a rectangle and an orientation.
    for placed in sorted(placement.macros.values(),
                         key=lambda p: p.path)[:5]:
        r = placed.rect
        print(f"  {placed.path:32s} ({r.x:7.1f},{r.y:7.1f}) "
              f"{r.w:5.1f}x{r.h:5.1f}  {placed.orientation.value}")
    print(f"  ... {len(placement.macros) - 5} more")

    # 4. Visualize.
    art = ascii_floorplan(placement.die,
                          [(p.path.split("/")[-1], p.rect)
                           for p in placement.macros.values()],
                          width=64)
    print(art)
    with open("quickstart_floorplan.svg", "w") as handle:
        handle.write(svg_floorplan(
            placement.die,
            [(p.path, p.rect) for p in placement.macros.values()]))
    print("wrote quickstart_floorplan.svg")


if __name__ == "__main__":
    main()
