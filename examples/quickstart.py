#!/usr/bin/env python
"""Quickstart: generate a design, place its macros, look at the result.

Every flow sits behind the unified ``repro.api``: prepare a design
once, resolve a flow from the registry, place.

Run:  python examples/quickstart.py
"""

from repro.api import get_flow, prepare_suite_design
from repro.viz.ascii_art import ascii_floorplan
from repro.viz.svg import svg_floorplan


def main() -> None:
    # 1. A design with RTL hierarchy and array information.  The suite
    #    generator mirrors the paper's industrial circuits; c1 is the
    #    smallest (32 macros).  PreparedDesign caches the flattened
    #    netlist and the Gnet/Gseq graphs for every consumer.
    prepared = prepare_suite_design("c1", scale="tiny")
    print(f"design {prepared.name}: die "
          f"{prepared.die_w} x {prepared.die_h}")

    # 2. Resolve a flow from the registry and place.  λ blends block
    #    flow (physical nets) against macro flow (global dataflow);
    #    0.5 is the middle of the paper's sweep.  Try "hidap:lam=0.8"
    #    or "indeda" — every name from `hidap flows` works.
    placer = get_flow("hidap:lam=0.5", seed=1)
    placement = placer.place(prepared)
    print(placement.summary())

    # 3. Inspect: every macro has a rectangle and an orientation.
    for placed in sorted(placement.macros.values(),
                         key=lambda p: p.path)[:5]:
        r = placed.rect
        print(f"  {placed.path:32s} ({r.x:7.1f},{r.y:7.1f}) "
              f"{r.w:5.1f}x{r.h:5.1f}  {placed.orientation.value}")
    print(f"  ... {len(placement.macros) - 5} more")

    # 4. Visualize.
    art = ascii_floorplan(placement.die,
                          [(p.path.split("/")[-1], p.rect)
                           for p in placement.macros.values()],
                          width=64)
    print(art)
    with open("quickstart_floorplan.svg", "w") as handle:
        handle.write(svg_floorplan(
            placement.die,
            [(p.path, p.rect) for p in placement.macros.values()]))
    print("wrote quickstart_floorplan.svg")


if __name__ == "__main__":
    main()
