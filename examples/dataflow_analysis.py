#!/usr/bin/env python
"""Explore a design's dataflow the way the paper's graphic tool does.

Walks the abstraction stack — netlist -> Gnet -> Gseq -> Gdf — for a
suite circuit, prints the block-level dataflow with latency/width
histograms, and emits a Graphviz DOT file plus the Fig. 9d-style SVG
diagram of the top-level block floorplan.

The ``PreparedDesign`` cache supplies the flattened netlist, hierarchy
tree and graphs once; the placer reuses them through the flow registry
instead of rebuilding its own copies.

Run:  python examples/dataflow_analysis.py [circuit]
"""

import sys

from repro.api import Effort, get_flow, prepare_suite_design
from repro.core.dataflow import infer_affinity
from repro.core.decluster import decluster
from repro.viz.ascii_art import ascii_histogram
from repro.viz.dfgraph import gdf_to_dot, svg_dataflow


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "c1"
    prepared = prepare_suite_design(circuit, scale="tiny")

    # The abstraction stack of Table I, built once and cached.
    flat, tree = prepared.flat, prepared.tree
    print(f"{circuit}: {flat}")
    print(f"  HT:   {len(tree)} hierarchy nodes")
    print(f"  Gnet: {prepared.gnet}")
    print(f"  Gseq: {prepared.gseq}")

    # Top-level blocks and their dataflow.
    cut = decluster(tree.root, flat, 0.01, 0.40)
    gdf, matrix = infer_affinity(prepared.gseq, cut.blocks, [], lam=0.5,
                                 latency_k=1.0)
    print(f"  Gdf:  {gdf}")

    print("\ntop-level dataflow edges:")
    for (i, j), edge in sorted(gdf.edges.items()):
        a = gdf.nodes[i].name.split("/")[-1]
        b = gdf.nodes[j].name.split("/")[-1]
        affinity = edge.affinity(0.5, 1.0)
        print(f"\n  {a} -> {b}   affinity={affinity:.1f}")
        if not edge.block_hist.is_empty():
            print("    block flow:")
            for line in ascii_histogram(
                    dict(edge.block_hist.items()), width=30).splitlines():
                print("      " + line)
        if not edge.macro_hist.is_empty():
            print("    macro flow:")
            for line in ascii_histogram(
                    dict(edge.macro_hist.items()), width=30).splitlines():
                print("      " + line)

    with open(f"{circuit}_gdf.dot", "w") as handle:
        handle.write(gdf_to_dot(gdf))
    print(f"\nwrote {circuit}_gdf.dot (render with: dot -Tsvg)")

    # Fig. 9d: blocks at their placed positions with affinity arrows.
    placement = get_flow("hidap", seed=1, effort=Effort.FAST).place(
        prepared)
    positions = {}
    for i, seed in enumerate(cut.blocks):
        rect = placement.block_rects.get(seed.hier_path() or "")
        if rect is not None:
            positions[i] = rect
    with open(f"{circuit}_gdf_floorplan.svg", "w") as handle:
        handle.write(svg_dataflow(gdf, positions, placement.die))
    print(f"wrote {circuit}_gdf_floorplan.svg")


if __name__ == "__main__":
    main()
