#!/usr/bin/env python
"""Place a hand-written design: build your own hierarchy with the
ModuleBuilder API and run HiDaP on it.

The example assembles a small video-pipeline-ish SoC: a line buffer
feeding two parallel filter banks whose results merge into an output
stage.  It shows the API surface a downstream user needs: cell types,
module builders, hierarchy composition, placement and inspection —
plus the staged-pipeline observer hooks, which report per-stage
progress while the placer runs.

Run:  python examples/custom_design.py
"""

from repro import HiDaP, HiDaPConfig, Design, PipelineObserver
from repro.netlist.builder import ModuleBuilder
from repro.netlist.cells import Direction, PinGeometry, PortDef, Side, macro_cell
from repro.netlist.stats import design_stats
from repro.netlist.validate import assert_valid
from repro.viz.ascii_art import ascii_floorplan

WIDTH = 32

LINE_RAM = macro_cell(
    "LINE_RAM", 18.0, 10.0,
    [PortDef("din", Direction.IN, WIDTH),
     PortDef("addr", Direction.IN, 6),
     PortDef("dout", Direction.OUT, WIDTH)],
    pin_geometry={"din": PinGeometry(Side.WEST, 0.5),
                  "addr": PinGeometry(Side.SOUTH, 0.5),
                  "dout": PinGeometry(Side.EAST, 0.5)})

COEF_ROM = macro_cell(
    "COEF_ROM", 9.0, 7.0,
    [PortDef("din", Direction.IN, 8),
     PortDef("addr", Direction.IN, 5),
     PortDef("dout", Direction.OUT, WIDTH)],
    pin_geometry={"dout": PinGeometry(Side.NORTH, 0.5)})


def line_buffer(design: Design) -> "ModuleBuilder":
    b = ModuleBuilder("line_buffer")
    b.input("pixels", WIDTH)
    b.output("window", WIDTH)
    b.wire("addr_w", WIDTH)
    b.wire("stored", WIDTH)
    b.register_array("wr_reg", WIDTH, d="pixels", q="addr_w")
    ram = b.instance(LINE_RAM, "lram")
    b.connect_bus("addr_w", ram, "din")
    b.connect("addr_w", ram, "addr", width=6)
    b.connect_bus("stored", ram, "dout")
    b.register_array("rd_reg", WIDTH, d="stored", q="window")
    module = b.build()
    design.add_module(module)
    return module


def filter_bank(design: Design, name: str, taps: int) -> "ModuleBuilder":
    b = ModuleBuilder(name)
    b.input("window", WIDTH)
    b.output("filtered", WIDTH)
    current = "window"
    for t in range(taps):
        rom = b.instance(COEF_ROM, f"rom{t}")
        coef = f"coef{t}"
        acc = f"acc{t}"
        b.wire(coef, WIDTH)
        b.wire(acc, WIDTH)
        b.connect(current, rom, "din", width=8)
        b.connect(current, rom, "addr", width=5)
        b.connect_bus(coef, rom, "dout")
        b.comb_cloud(f"mac{t}", [current, coef], acc)
        nxt = f"tap{t}" if t < taps - 1 else "filtered"
        if nxt != "filtered":
            b.wire(nxt, WIDTH)
        b.register_array(f"tap_reg{t}", WIDTH, d=acc, q=nxt)
        current = nxt
    module = b.build()
    design.add_module(module)
    return module


def main() -> None:
    design = Design("video_soc")
    lb = line_buffer(design)
    fa = filter_bank(design, "filter_a", taps=3)
    fb = filter_bank(design, "filter_b", taps=2)

    top = ModuleBuilder("video_top")
    top.input("pix_in", WIDTH)
    top.output("pix_out", WIDTH)
    top.wire("window", WIDTH)
    top.wire("fa_out", WIDTH)
    top.wire("fb_out", WIDTH)
    top.wire("merged", WIDTH)
    ilb = top.instance(lb, "u_linebuf")
    ifa = top.instance(fa, "u_filt_a")
    ifb = top.instance(fb, "u_filt_b")
    top.connect_bus("pix_in", ilb, "pixels")
    top.connect_bus("window", ilb, "window")
    top.connect_bus("window", ifa, "window")
    top.connect_bus("window", ifb, "window")
    top.connect_bus("fa_out", ifa, "filtered")
    top.connect_bus("fb_out", ifb, "filtered")
    top.comb_cloud("merge", ["fa_out", "fb_out"], "merged")
    top.register_array("out_reg", WIDTH, d="merged", q="pix_out")
    design.add_module(top.build())
    design.set_top("video_top")

    assert_valid(design)
    print(design_stats(design).summary())

    # Observe the staged pipeline while it runs:
    # flatten -> graphs -> shape-curves -> floorplan -> flip -> legalize
    class Progress(PipelineObserver):
        def on_stage_end(self, stage, artifacts, seconds):
            print(f"  [stage] {stage.name:12s} {seconds:6.2f}s")

    placer = HiDaP(HiDaPConfig(seed=3), observers=[Progress()])
    placement = placer.place(design, 90.0, 70.0)
    print(placement.summary())
    print(ascii_floorplan(
        placement.die,
        [(p.path, p.rect) for p in placement.macros.values()],
        width=60))
    for placed in sorted(placement.macros.values(),
                         key=lambda p: p.path):
        print(f"  {placed.path:24s} @({placed.rect.x:6.1f},"
              f"{placed.rect.y:6.1f}) {placed.orientation.value}")


if __name__ == "__main__":
    main()
